// Differential durability suite for the NVM staging tier.
//
// The stage's contract is observational equivalence: once drained, a stage-on stack must be
// bit-identical at the block-device level to a stage-off stack that ran the same logical
// workload — the NVM tier may reorder and coalesce, but never change what the device stores.
// These tests drive both stacks with the same seeded mixed workload (small staged writes,
// large direct writes, overlapping overwrites, trims, atomic batches, queued rounds, and
// duty-cycled destage bursts at arbitrary interior points) and compare every touched block.
//
// The second half checks the tracing contract: depth-1 sync writes through a traced stage
// still satisfy the exact breakdown identity (Accounted + queueing == latency, summed), with
// the new `nvm` component carrying the staged-path time.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/core/vld.h"
#include "src/nvm/nvm_stage.h"
#include "src/obs/trace.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/nvm_device.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::core {
namespace {

constexpr uint32_t kBlockSectors = 8;
constexpr size_t kBlockBytes = 4096;

std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 197 + i * 11 + 5));
  }
  return v;
}

// One stack: a VLD on its own small disk, optionally fronted by an NVM stage. The two stacks
// in a differential run get independent clocks deliberately — NVM acks shift all subsequent
// timing, so identical content despite divergent clocks is exactly the property under test.
struct Stack {
  explicit Stack(bool staged) {
    disk = std::make_unique<simdisk::SimDisk>(
        simdisk::Truncated(simdisk::SeagateSt19101(), 3), &clock);
    vld = std::make_unique<Vld>(disk.get(), VldConfig{.queue_depth = 16});
    EXPECT_TRUE(vld->Format().ok());
    if (staged) {
      nvm = std::make_unique<simdisk::NvmDevice>(simdisk::NvmDeviceParams{}, &clock);
      stage = std::make_unique<NvmStage>(nvm.get(), vld.get(), NvmStageConfig{});
      EXPECT_TRUE(stage->Format().ok());
    }
  }

  common::Status Write(simdisk::Lba lba, std::span<const std::byte> in) {
    return stage != nullptr ? stage->Write(lba, in) : vld->Write(lba, in);
  }
  common::Status Read(simdisk::Lba lba, std::span<std::byte> out) {
    return stage != nullptr ? stage->Read(lba, out) : vld->Read(lba, out);
  }
  common::Status Trim(simdisk::Lba lba, uint64_t sectors) {
    return stage != nullptr ? stage->Trim(lba, sectors) : vld->Trim(lba, sectors);
  }
  common::Status WriteAtomic(std::span<const Vld::AtomicWrite> writes) {
    return stage != nullptr ? stage->WriteAtomic(writes) : vld->WriteAtomic(writes);
  }
  common::Status QueuedRound(std::span<const Vld::AtomicWrite> writes) {
    for (const Vld::AtomicWrite& w : writes) {
      auto id = stage != nullptr ? stage->SubmitWrite(w.lba, w.data)
                                 : vld->SubmitWrite(w.lba, w.data);
      if (!id.ok()) {
        return id.status();
      }
    }
    auto done = stage != nullptr ? stage->FlushQueue() : vld->FlushQueue();
    return done.status();
  }

  common::Clock clock;
  std::unique_ptr<simdisk::SimDisk> disk;
  std::unique_ptr<Vld> vld;
  std::unique_ptr<simdisk::NvmDevice> nvm;
  std::unique_ptr<NvmStage> stage;
};

// Drives `plain` and `staged` through the same seeded workload, recording which blocks were
// logically written (and not subsequently trimmed) in `live`.
void RunMixedWorkload(Stack& plain, Stack& staged, uint64_t seed,
                      std::map<uint32_t, uint32_t>& live) {
  common::Rng rng(seed);
  const uint32_t blocks = plain.vld->logical_blocks();
  ASSERT_EQ(blocks, staged.vld->logical_blocks());
  const uint32_t span = blocks - 8;  // Headroom for 4-block extents.
  uint32_t version = 1;
  for (int op = 0; op < 240; ++op) {
    const uint32_t roll = static_cast<uint32_t>(rng.Below(100));
    if (roll < 50) {
      // Small sync write: staged on one side, eager on the other.
      const uint32_t b = static_cast<uint32_t>(rng.Below(span));
      const auto data = Pattern(kBlockBytes, version);
      ASSERT_TRUE(plain.Write(b * kBlockSectors, data).ok());
      ASSERT_TRUE(staged.Write(b * kBlockSectors, data).ok());
      live[b] = version++;
    } else if (roll < 65) {
      // Large write: 4 blocks, above the staging threshold, routed around the stage. It
      // regularly overlaps previously staged blocks, exercising the conflict/invalidate path.
      const uint32_t b = static_cast<uint32_t>(rng.Below(span));
      const auto data = Pattern(4 * kBlockBytes, version);
      ASSERT_TRUE(plain.Write(b * kBlockSectors, data).ok());
      ASSERT_TRUE(staged.Write(b * kBlockSectors, data).ok());
      for (uint32_t i = 0; i < 4; ++i) {
        live[b + i] = version;  // All four blocks carry the same versioned pattern.
      }
      ++version;
    } else if (roll < 75) {
      // Trim of 2 blocks — another staged-conflict source; trimmed blocks leave the model.
      const uint32_t b = static_cast<uint32_t>(rng.Below(span));
      ASSERT_TRUE(plain.Trim(b * kBlockSectors, 2 * kBlockSectors).ok());
      ASSERT_TRUE(staged.Trim(b * kBlockSectors, 2 * kBlockSectors).ok());
      live.erase(b);
      live.erase(b + 1);
    } else if (roll < 83) {
      // Two-extent atomic write. Distinct extents: overlapping extents in one transaction
      // would make the final content an ordering question, not a durability one.
      const uint32_t b0 = static_cast<uint32_t>(rng.Below(span));
      const uint32_t b1 = b0 == span - 1 ? 0 : b0 + 1 + static_cast<uint32_t>(
                                                            rng.Below(span - b0 - 1));
      const auto d0 = Pattern(kBlockBytes, version);
      const auto d1 = Pattern(kBlockBytes, version + 1);
      const Vld::AtomicWrite writes[] = {{b0 * kBlockSectors, d0}, {b1 * kBlockSectors, d1}};
      ASSERT_TRUE(plain.WriteAtomic(writes).ok());
      ASSERT_TRUE(staged.WriteAtomic(writes).ok());
      live[b0] = version;
      live[b1] = version + 1;
      version += 2;
    } else if (roll < 91) {
      // A queued group-commit round of 4 writes to DISTINCT blocks. Same-batch duplicates
      // would be serviced in SPTF order, which legitimately differs between the two stacks
      // (their clocks diverge), turning the comparison into an ordering lottery.
      std::vector<std::vector<std::byte>> payloads;
      std::vector<Vld::AtomicWrite> writes;
      std::vector<uint32_t> targets;
      while (targets.size() < 4) {
        const uint32_t b = static_cast<uint32_t>(rng.Below(span));
        if (std::find(targets.begin(), targets.end(), b) == targets.end()) {
          targets.push_back(b);
          payloads.push_back(
              Pattern(kBlockBytes, version + static_cast<uint32_t>(payloads.size())));
        }
      }
      for (size_t i = 0; i < payloads.size(); ++i) {
        writes.push_back({targets[i] * kBlockSectors, payloads[i]});
      }
      ASSERT_TRUE(plain.QueuedRound(writes).ok());
      ASSERT_TRUE(staged.QueuedRound(writes).ok());
      for (size_t i = 0; i < targets.size(); ++i) {
        live[targets[i]] = version + static_cast<uint32_t>(i);
      }
      version += 4;
    } else {
      // Duty-cycled background destage on the staged side only: the stage may retire any
      // prefix of its log here, so interior destage points are interleaved with live traffic.
      if (staged.stage != nullptr) {
        ASSERT_TRUE(staged.stage->RunDestageBurst(common::Milliseconds(1)).ok());
      }
    }
  }
}

// Every live block must read back byte-identical across the two stacks — through the stage,
// AND from the staged stack's backing VLD directly (the block-device-level identity: after
// Drain() the stage must have pushed everything down, not merely be masking differences with
// its overlay).
void ExpectBitIdentical(Stack& plain, Stack& staged,
                        const std::map<uint32_t, uint32_t>& live) {
  ASSERT_TRUE(staged.stage->Drain().ok());
  EXPECT_EQ(staged.stage->staged_sectors(), 0u);
  EXPECT_EQ(staged.stage->log_records(), 0u);
  std::vector<std::byte> want(kBlockBytes);
  std::vector<std::byte> via_stage(kBlockBytes);
  std::vector<std::byte> via_backing(kBlockBytes);
  for (const auto& [block, version] : live) {
    const simdisk::Lba lba = block * kBlockSectors;
    ASSERT_TRUE(plain.Read(lba, want).ok()) << "block " << block;
    ASSERT_TRUE(staged.Read(lba, via_stage).ok()) << "block " << block;
    ASSERT_TRUE(staged.vld->Read(lba, via_backing).ok()) << "block " << block;
    EXPECT_EQ(want, via_stage) << "stage-on read diverged at block " << block << " (version "
                               << version << ")";
    EXPECT_EQ(want, via_backing) << "backing device diverged at block " << block
                                 << " (version " << version << ") after Drain";
    EXPECT_EQ(want, Pattern(kBlockBytes, version)) << "model diverged at block " << block;
  }
}

TEST(NvmDifferentialTest, DrainedStageIsBitIdenticalToStageOff) {
  Stack plain(/*staged=*/false);
  Stack staged(/*staged=*/true);
  std::map<uint32_t, uint32_t> live;
  RunMixedWorkload(plain, staged, /*seed=*/1234, live);
  ASSERT_FALSE(live.empty());
  // The workload must actually have exercised the staged paths, or the comparison is vacuous.
  EXPECT_GT(staged.stage->stats().staged_writes, 0u);
  EXPECT_GT(staged.stage->stats().direct_writes, 0u);
  EXPECT_GT(staged.stage->stats().invalidates + staged.stage->stats().conflict_destages, 0u);
  ExpectBitIdentical(plain, staged, live);
}

TEST(NvmDifferentialTest, BitIdentityHoldsAcrossSeeds) {
  for (uint64_t seed : {7u, 99u, 4242u}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    Stack plain(/*staged=*/false);
    Stack staged(/*staged=*/true);
    std::map<uint32_t, uint32_t> live;
    RunMixedWorkload(plain, staged, seed, live);
    ExpectBitIdentical(plain, staged, live);
  }
}

TEST(NvmDifferentialTest, RecoveredStageStillConvergesToStageOff) {
  // Crash the staged stack mid-workload (drop the DRAM overlay, keep NVM + disk), recover a
  // fresh stage from the NVM image, finish the workload's logical effect via Drain, and the
  // block-device contents must still match the stage-off run. This is the durability half of
  // the differential contract: an acked staged write survives on NVM alone.
  Stack plain(/*staged=*/false);
  Stack staged(/*staged=*/true);
  std::map<uint32_t, uint32_t> live;
  RunMixedWorkload(plain, staged, /*seed=*/5150, live);
  // "Crash": adopt the NVM media into a new device + stage; the old overlay is gone.
  auto nvm2 = std::make_unique<simdisk::NvmDevice>(simdisk::NvmDeviceParams{}, &staged.clock,
                                                   staged.nvm->Snapshot());
  auto stage2 = std::make_unique<NvmStage>(nvm2.get(), staged.vld.get(), NvmStageConfig{});
  auto info = stage2->Recover();
  ASSERT_TRUE(info.ok()) << info.status().message();
  EXPECT_FALSE(info->torn_tail_dropped);
  staged.nvm = std::move(nvm2);
  staged.stage = std::move(stage2);
  ExpectBitIdentical(plain, staged, live);
}

// --- Tracing: the breakdown identity survives the new nvm component -----------------------

struct TracedRun {
  common::Duration latency_sum = 0;
  common::Duration breakdown_total = 0;
  common::Duration nvm_total = 0;
  common::Duration disk_total = 0;
  uint64_t completed_spans = 0;
};

// `writes` depth-1 sync writes through a traced stage: `small` selects staged one-block
// writes or direct four-block writes.
TracedRun RunTracedSync(int writes, bool small) {
  Stack staged(/*staged=*/true);
  obs::TraceRecorder tracer(&staged.clock);
  staged.disk->set_tracer(&tracer);
  staged.stage->set_tracer(&tracer);
  common::Rng rng(42);
  const uint32_t span = staged.vld->logical_blocks() - 8;
  const size_t bytes = small ? kBlockBytes : 4 * kBlockBytes;
  for (int i = 0; i < writes; ++i) {
    const auto data = Pattern(bytes, static_cast<uint32_t>(i));
    EXPECT_TRUE(
        staged.Write(static_cast<simdisk::Lba>(rng.Below(span)) * kBlockSectors, data).ok());
  }
  TracedRun run;
  run.latency_sum = tracer.latency_hist().Sum();
  run.breakdown_total = tracer.totals().Total();
  run.nvm_total = tracer.totals().nvm;
  const obs::TimeBreakdown& t = tracer.totals();
  run.disk_total = t.seek + t.rotation + t.transfer + t.head_switch;
  run.completed_spans = tracer.completed_spans();
  return run;
}

TEST(NvmBreakdownTest, StagedSyncWritesSumToLatencyWithNvmComponent) {
  const TracedRun run = RunTracedSync(/*writes=*/64, /*small=*/true);
  EXPECT_EQ(run.completed_spans, 64u);
  // The exact identity: every nanosecond of every span is attributed to a component (the new
  // nvm bucket included) or to the queueing residual — no slop term, no double counting.
  EXPECT_EQ(run.breakdown_total, run.latency_sum);
  // Staged acks are pure NVM time: the nvm component is live and mechanical components absent.
  EXPECT_GT(run.nvm_total, 0);
  EXPECT_EQ(run.disk_total, 0);
}

TEST(NvmBreakdownTest, DirectWritesThroughStageKeepIdentityWithoutNvmTime) {
  const TracedRun run = RunTracedSync(/*writes=*/16, /*small=*/false);
  EXPECT_EQ(run.breakdown_total, run.latency_sum);
  // Above-threshold writes bypass the NVM log entirely (no staged overlap existed here), so
  // their spans carry mechanical disk time and zero nvm time.
  EXPECT_EQ(run.nvm_total, 0);
  EXPECT_GT(run.disk_total, 0);
}

TEST(NvmBreakdownTest, DestageBurstsAndDrainPreserveIdentity) {
  Stack staged(/*staged=*/true);
  obs::TraceRecorder tracer(&staged.clock);
  staged.disk->set_tracer(&tracer);
  staged.stage->set_tracer(&tracer);
  common::Rng rng(7);
  const uint32_t span = staged.vld->logical_blocks() - 8;
  for (int i = 0; i < 32; ++i) {
    const auto data = Pattern(kBlockBytes, static_cast<uint32_t>(i));
    ASSERT_TRUE(
        staged.Write(static_cast<simdisk::Lba>(rng.Below(span)) * kBlockSectors, data).ok());
    if (i % 8 == 7) {
      ASSERT_TRUE(staged.stage->RunDestageBurst(common::Milliseconds(1)).ok());
    }
  }
  ASSERT_TRUE(staged.stage->Drain().ok());
  // Destage/drain spans mix NVM reads, disk writes, and flushes; the identity must still be
  // exact over the whole run.
  EXPECT_EQ(tracer.totals().Total(), tracer.latency_hist().Sum());
  EXPECT_GT(tracer.totals().nvm, 0);
  EXPECT_GT(staged.stage->stats().destage_batches, 0u);
}

TEST(NvmBreakdownTest, StagedAckIsCheaperThanEagerWrite) {
  // The latency story the stage exists for: a one-block sync write acked from NVM costs orders
  // of magnitude less virtual time than the same write eagerly placed on the disk.
  Stack staged(/*staged=*/true);
  Stack plain(/*staged=*/false);
  const auto data = Pattern(kBlockBytes, 3);
  const common::Time s0 = staged.clock.Now();
  ASSERT_TRUE(staged.Write(0, data).ok());
  const common::Duration staged_cost = staged.clock.Now() - s0;
  const common::Time p0 = plain.clock.Now();
  ASSERT_TRUE(plain.Write(0, data).ok());
  const common::Duration eager_cost = plain.clock.Now() - p0;
  EXPECT_LT(staged_cost, eager_cost / 10);
}

}  // namespace
}  // namespace vlog::core
