// The queued read path: SubmitRead/FlushQueue through the shared request queue.
//
// Covers the acceptance gates for the queued-read engine: depth-1 clock/data identity with the
// synchronous Read path, same-batch RAW forwarding (full and partial overlap), submission-order
// visibility (a read never sees a later-submitted write), read-only batches committing nothing,
// SPTF determinism and bounded-age starvation promotion, the shared queue-depth budget, and a
// differential check of seeded randomized SubmitRead/SubmitWrite/FlushQueue/Flush interleavings
// against a synchronous-replay oracle device (bit-identical read payloads and final contents),
// with and without a volatile write-back drive cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/vld.h"
#include "src/obs/trace.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::core {
namespace {

constexpr size_t kBlockBytes = 4096;
constexpr uint32_t kBlockSectors = 8;
constexpr uint32_t kSectorBytes = 512;

std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 131 + i * 7));
  }
  return v;
}

// A self-contained device rig, so tests can run identical histories on independent instances.
struct Rig {
  explicit Rig(VldConfig config = VldConfig{.queue_depth = 16}, uint64_t cache_sectors = 0,
               bool trace = false) {
    simdisk::DiskParams params = simdisk::Truncated(simdisk::SeagateSt19101(), 3);
    params.cache.capacity_sectors = cache_sectors;
    disk = std::make_unique<simdisk::SimDisk>(params, &clock);
    if (trace) {
      tracer = std::make_unique<obs::TraceRecorder>(&clock);
      disk->set_tracer(tracer.get());
    }
    vld = std::make_unique<Vld>(disk.get(), config);
    EXPECT_TRUE(vld->Format().ok());
  }

  common::Clock clock;
  std::unique_ptr<simdisk::SimDisk> disk;
  std::unique_ptr<obs::TraceRecorder> tracer;
  std::unique_ptr<Vld> vld;
};

// Acceptance gate: with exactly one queued request, the queued read must be indistinguishable
// from the synchronous path — same bytes, same clock advance, same per-span time breakdown.
TEST(QueuedReadTest, DepthOneMatchesSynchronousReadExactly) {
  Rig sync(VldConfig{.queue_depth = 16}, /*cache_sectors=*/0, /*trace=*/true);
  Rig queued(VldConfig{.queue_depth = 16}, /*cache_sectors=*/0, /*trace=*/true);
  for (uint32_t b = 0; b < 8; ++b) {
    const auto data = Pattern(kBlockBytes, b + 1);
    ASSERT_TRUE(sync.vld->Write(static_cast<simdisk::Lba>(b) * kBlockSectors, data).ok());
    ASSERT_TRUE(queued.vld->Write(static_cast<simdisk::Lba>(b) * kBlockSectors, data).ok());
  }
  ASSERT_EQ(sync.clock.Now(), queued.clock.Now()) << "identical histories must stay in step";

  const simdisk::Lba lba = 3 * kBlockSectors;
  const common::Time start = sync.clock.Now();
  std::vector<std::byte> sync_out(kBlockBytes);
  ASSERT_TRUE(sync.vld->Read(lba, sync_out).ok());
  const common::Duration sync_elapsed = sync.clock.Now() - start;

  auto id = queued.vld->SubmitRead(lba, kBlockSectors);
  ASSERT_TRUE(id.ok());
  auto done = queued.vld->FlushQueue();
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 1u);
  const Vld::QueuedCompletion& c = (*done)[0];
  EXPECT_FALSE(c.is_write);
  EXPECT_EQ(c.data, sync_out) << "depth-1 queued read must return the synchronous bytes";
  EXPECT_EQ(queued.clock.Now(), sync.clock.Now())
      << "depth-1 queued read must charge exactly the synchronous time";
  EXPECT_EQ(c.Latency(), sync_elapsed);
  EXPECT_EQ(c.complete_time, queued.clock.Now());

  // The traced spans must match component by component, and each must satisfy the breakdown
  // identity (accounted + queueing == latency).
  auto read_span = [](const obs::TraceRecorder& tracer) -> const obs::TraceRecorder::Span* {
    const obs::TraceRecorder::Span* found = nullptr;
    for (const auto& span : tracer.spans()) {
      if (span.layer == obs::Layer::kVld && span.kind == obs::SpanKind::kRead) {
        EXPECT_EQ(found, nullptr) << "exactly one VLD read span expected";
        found = &span;
      }
    }
    return found;
  };
  const obs::TraceRecorder::Span* ss = read_span(*sync.tracer);
  const obs::TraceRecorder::Span* qs = read_span(*queued.tracer);
  ASSERT_NE(ss, nullptr);
  ASSERT_NE(qs, nullptr);
  EXPECT_EQ(qs->submit, ss->submit);
  EXPECT_EQ(qs->complete, ss->complete);
  EXPECT_EQ(qs->breakdown.host_cpu, ss->breakdown.host_cpu);
  EXPECT_EQ(qs->breakdown.controller, ss->breakdown.controller);
  EXPECT_EQ(qs->breakdown.seek, ss->breakdown.seek);
  EXPECT_EQ(qs->breakdown.head_switch, ss->breakdown.head_switch);
  EXPECT_EQ(qs->breakdown.rotation, ss->breakdown.rotation);
  EXPECT_EQ(qs->breakdown.transfer, ss->breakdown.transfer);
  EXPECT_EQ(qs->breakdown.flush, ss->breakdown.flush);
  EXPECT_EQ(qs->breakdown.queueing, ss->breakdown.queueing);
  EXPECT_EQ(qs->breakdown.Total(), qs->Latency()) << "breakdown must sum to the latency";
  EXPECT_EQ(ss->breakdown.Total(), ss->Latency());
}

// Same-batch RAW, full overlap: a read submitted after a write to the same block must return
// the pending (not yet committed) payload, served through the forwarding path.
TEST(QueuedReadTest, SameBatchRawServesPendingWriteData) {
  Rig rig;
  const simdisk::Lba lba = 5 * kBlockSectors;
  const auto v1 = Pattern(kBlockBytes, 1);
  const auto v2 = Pattern(kBlockBytes, 2);
  ASSERT_TRUE(rig.vld->Write(lba, v1).ok());
  const uint64_t forwarded_before = rig.vld->stats().forwarded_read_sectors;

  ASSERT_TRUE(rig.vld->SubmitWrite(lba, v2).ok());
  ASSERT_TRUE(rig.vld->SubmitRead(lba, kBlockSectors).ok());
  auto done = rig.vld->FlushQueue();
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 2u);
  EXPECT_TRUE((*done)[0].is_write);
  ASSERT_FALSE((*done)[1].is_write);
  EXPECT_EQ((*done)[1].data, v2) << "same-batch RAW must see the pending write";
  EXPECT_EQ(rig.vld->stats().forwarded_read_sectors - forwarded_before, kBlockSectors);

  std::vector<std::byte> out(kBlockBytes);
  ASSERT_TRUE(rig.vld->Read(lba, out).ok());
  EXPECT_EQ(out, v2);
}

// Partial overlap: only the sectors the pending write covers are forwarded; the rest of the
// extent comes off the media through the (still pre-batch) map.
TEST(QueuedReadTest, SameBatchRawPartialOverlapForwardsOnlyCoveredSectors) {
  Rig rig;
  const auto v1a = Pattern(kBlockBytes, 10);
  const auto v1b = Pattern(kBlockBytes, 11);
  const auto v2 = Pattern(kBlockBytes, 12);
  ASSERT_TRUE(rig.vld->Write(10 * kBlockSectors, v1a).ok());
  ASSERT_TRUE(rig.vld->Write(11 * kBlockSectors, v1b).ok());
  const uint64_t forwarded_before = rig.vld->stats().forwarded_read_sectors;

  // Write block 10; read sectors straddling the blocks: last 4 of block 10 (forwarded from the
  // pending payload) + first 4 of block 11 (served from the media).
  ASSERT_TRUE(rig.vld->SubmitWrite(10 * kBlockSectors, v2).ok());
  ASSERT_TRUE(rig.vld->SubmitRead(10 * kBlockSectors + 4, 8).ok());
  auto done = rig.vld->FlushQueue();
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 2u);
  ASSERT_FALSE((*done)[1].is_write);
  const std::vector<std::byte>& got = (*done)[1].data;
  ASSERT_EQ(got.size(), 8u * kSectorBytes);
  EXPECT_EQ(std::memcmp(got.data(), v2.data() + 4 * kSectorBytes, 4 * kSectorBytes), 0)
      << "overlapping sectors must come from the pending write";
  EXPECT_EQ(std::memcmp(got.data() + 4 * kSectorBytes, v1b.data(), 4 * kSectorBytes), 0)
      << "non-overlapping sectors must come from the committed block";
  EXPECT_EQ(rig.vld->stats().forwarded_read_sectors - forwarded_before, 4u);
}

// Submission order defines visibility: a read never sees a later-submitted write, whatever
// order SPTF actually services the batch in (the map commits only after the batch).
TEST(QueuedReadTest, ReadSubmittedBeforeWriteSeesPreBatchData) {
  Rig rig;
  const simdisk::Lba lba = 3 * kBlockSectors;
  const auto v1 = Pattern(kBlockBytes, 1);
  const auto v2 = Pattern(kBlockBytes, 2);
  ASSERT_TRUE(rig.vld->Write(lba, v1).ok());
  const uint64_t forwarded_before = rig.vld->stats().forwarded_read_sectors;

  ASSERT_TRUE(rig.vld->SubmitRead(lba, kBlockSectors).ok());
  ASSERT_TRUE(rig.vld->SubmitWrite(lba, v2).ok());
  auto done = rig.vld->FlushQueue();
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 2u);
  ASSERT_FALSE((*done)[0].is_write);
  EXPECT_EQ((*done)[0].data, v1) << "a read must never observe a later-submitted write";
  EXPECT_EQ(rig.vld->stats().forwarded_read_sectors - forwarded_before, 0u);

  std::vector<std::byte> out(kBlockBytes);
  ASSERT_TRUE(rig.vld->Read(lba, out).ok());
  EXPECT_EQ(out, v2) << "the write itself must still commit with the batch";
}

TEST(QueuedReadTest, QueuedReadOfUnmappedBlockReturnsZeros) {
  Rig rig;
  const uint64_t unmapped_before = rig.vld->stats().unmapped_reads;
  ASSERT_TRUE(rig.vld->SubmitRead(100 * kBlockSectors, kBlockSectors).ok());
  auto done = rig.vld->FlushQueue();
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 1u);
  EXPECT_EQ((*done)[0].data, std::vector<std::byte>(kBlockBytes));
  EXPECT_GT(rig.vld->stats().unmapped_reads, unmapped_before);
}

// A read-only batch must leave no trace behind: no map change, no commit, no media write.
TEST(QueuedReadTest, ReadOnlyFlushQueueCommitsNothing) {
  Rig rig;
  for (uint32_t b = 0; b < 8; ++b) {
    ASSERT_TRUE(
        rig.vld->Write(static_cast<simdisk::Lba>(b) * kBlockSectors, Pattern(kBlockBytes, b))
            .ok());
  }
  const std::vector<uint32_t> map_before = rig.vld->logical_map();
  const VldStats before = rig.vld->stats();

  for (uint32_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(rig.vld->SubmitRead(static_cast<simdisk::Lba>(b) * kBlockSectors,
                                    kBlockSectors).ok());
  }
  auto done = rig.vld->FlushQueue();
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->size(), 4u);
  EXPECT_EQ(rig.vld->QueuedRequests(), 0u);

  const VldStats delta = rig.vld->stats() - before;
  EXPECT_EQ(rig.vld->logical_map(), map_before) << "reads must not change the map";
  EXPECT_EQ(delta.blocks_written, 0u);
  EXPECT_EQ(delta.host_writes, 0u);
  EXPECT_EQ(delta.atomic_commits, 0u);
  EXPECT_EQ(delta.group_commits, 0u);
  EXPECT_EQ(delta.queued_reads, 4u);
  EXPECT_EQ(delta.host_reads, 4u);
}

// Reads and writes draw from one queue-depth budget.
TEST(QueuedReadTest, SharedQueueDepthAcrossReadsAndWrites) {
  Rig rig(VldConfig{.queue_depth = 4});
  const auto payload = Pattern(kBlockBytes, 1);
  ASSERT_TRUE(rig.vld->SubmitWrite(0, payload).ok());
  ASSERT_TRUE(rig.vld->SubmitWrite(kBlockSectors, payload).ok());
  ASSERT_TRUE(rig.vld->SubmitRead(0, kBlockSectors).ok());
  ASSERT_TRUE(rig.vld->SubmitRead(kBlockSectors, kBlockSectors).ok());
  EXPECT_EQ(rig.vld->QueuedRequests(), 4u);
  EXPECT_EQ(rig.vld->QueuedWrites(), 2u);
  EXPECT_EQ(rig.vld->QueuedReads(), 2u);

  auto read_overflow = rig.vld->SubmitRead(0, kBlockSectors);
  ASSERT_FALSE(read_overflow.ok());
  EXPECT_EQ(read_overflow.status().code(), common::StatusCode::kFailedPrecondition);
  auto write_overflow = rig.vld->SubmitWrite(0, payload);
  ASSERT_FALSE(write_overflow.ok());
  EXPECT_EQ(write_overflow.status().code(), common::StatusCode::kFailedPrecondition);

  auto done = rig.vld->FlushQueue();
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 4u);
  for (size_t i = 1; i < done->size(); ++i) {
    EXPECT_LT((*done)[i - 1].id, (*done)[i].id) << "completions arrive in submission order";
  }
  EXPECT_EQ(rig.vld->QueuedRequests(), 0u);
  EXPECT_TRUE(rig.vld->SubmitRead(0, kBlockSectors).ok());
  ASSERT_TRUE(rig.vld->FlushQueue().ok());
}

// Satellite (d): the SPTF schedule is a pure function of the request set — two identical runs
// must produce identical service times — and differs from FCFS only in service order, never in
// returned bytes.
TEST(QueuedReadTest, SptfServiceOrderIsDeterministic) {
  auto run = [](simdisk::SchedulerPolicy policy) {
    Rig rig(VldConfig{.queue_depth = 16, .read_policy = policy});
    for (uint32_t b = 0; b < 32; ++b) {
      EXPECT_TRUE(
          rig.vld->Write(static_cast<simdisk::Lba>(b) * kBlockSectors, Pattern(kBlockBytes, b))
              .ok());
    }
    std::vector<std::pair<uint64_t, std::vector<std::byte>>> outcome;
    for (int round = 0; round < 3; ++round) {
      const auto payload = Pattern(kBlockBytes, 90 + static_cast<uint32_t>(round));
      for (const uint32_t b : {0u, 17u, 3u, 29u, 8u, 23u}) {
        EXPECT_TRUE(
            rig.vld->SubmitRead(static_cast<simdisk::Lba>(b) * kBlockSectors, kBlockSectors)
                .ok());
      }
      EXPECT_TRUE(rig.vld->SubmitWrite(5 * kBlockSectors, payload).ok());
      auto done = rig.vld->FlushQueue();
      EXPECT_TRUE(done.ok());
      for (const Vld::QueuedCompletion& c : *done) {
        // dispatch/complete times pin the service schedule; data pins correctness.
        std::vector<std::byte> record(16);
        std::memcpy(record.data(), &c.dispatch_time, sizeof(c.dispatch_time));
        std::memcpy(record.data() + 8, &c.complete_time, sizeof(c.complete_time));
        record.insert(record.end(), c.data.begin(), c.data.end());
        outcome.emplace_back(c.id, std::move(record));
      }
    }
    return outcome;
  };

  const auto sptf1 = run(simdisk::SchedulerPolicy::kSptf);
  const auto sptf2 = run(simdisk::SchedulerPolicy::kSptf);
  EXPECT_EQ(sptf1, sptf2) << "SPTF must be deterministic across identical runs";

  const auto fcfs = run(simdisk::SchedulerPolicy::kFcfs);
  ASSERT_EQ(fcfs.size(), sptf1.size());
  for (size_t i = 0; i < fcfs.size(); ++i) {
    EXPECT_EQ(fcfs[i].first, sptf1[i].first);
    const std::vector<std::byte> fcfs_data(fcfs[i].second.begin() + 16, fcfs[i].second.end());
    const std::vector<std::byte> sptf_data(sptf1[i].second.begin() + 16,
                                           sptf1[i].second.end());
    EXPECT_EQ(fcfs_data, sptf_data) << "scheduling policy must never change returned bytes";
  }
}

// Satellite (d): bounded-age promotion. An expensive mapped read submitted first would lose to
// cost-0 unmapped reads under pure SPTF; once its age crosses the bound it must go first.
TEST(QueuedReadTest, ReadStarvationBoundPromotesOldestRead) {
  auto dispatch_rank = [](common::Duration bound) {
    Rig rig(VldConfig{.queue_depth = 16,
                      .read_policy = simdisk::SchedulerPolicy::kSptf,
                      .read_starvation_bound = bound});
    EXPECT_TRUE(rig.vld->Write(0, Pattern(kBlockBytes, 1)).ok());
    auto first = rig.vld->SubmitRead(0, kBlockSectors);  // Mapped: positive media cost.
    EXPECT_TRUE(first.ok());
    rig.clock.Advance(common::Milliseconds(2));
    for (uint32_t b = 100; b < 103; ++b) {
      // Unmapped reads: zero positioning cost, so SPTF always prefers them.
      EXPECT_TRUE(
          rig.vld->SubmitRead(static_cast<simdisk::Lba>(b) * kBlockSectors, kBlockSectors)
              .ok());
    }
    auto done = rig.vld->FlushQueue();
    EXPECT_TRUE(done.ok());
    size_t rank = 0;
    for (const Vld::QueuedCompletion& c : *done) {
      if (c.id != *first && c.dispatch_time < (*done)[0].dispatch_time) {
        ++rank;
      }
    }
    return rank;  // How many other requests were dispatched before the oldest one.
  };

  EXPECT_EQ(dispatch_rank(0), 3u)
      << "without a bound, the cost-0 reads all jump the expensive oldest read";
  EXPECT_EQ(dispatch_rank(common::Milliseconds(1)), 0u)
      << "past the bound, the oldest read must be serviced first";
}

// The differential suite: seeded randomized interleavings of SubmitRead / SubmitWrite /
// FlushQueue / Flush on the queued device, replayed synchronously on an identical oracle
// device. Every queued read must return bit-identical bytes to the oracle's synchronous read
// at its submission point, and the final logical contents must match block for block.
void RunDifferential(uint64_t seed, uint64_t cache_sectors) {
  SCOPED_TRACE("seed " + std::to_string(seed) + " cache " + std::to_string(cache_sectors));
  Rig queued(VldConfig{.queue_depth = 16}, cache_sectors);
  Rig oracle(VldConfig{.queue_depth = 16}, cache_sectors);
  const uint32_t region = std::min<uint32_t>(queued.vld->logical_blocks(), 96);
  common::Rng rng(seed);
  uint64_t reads_checked = 0;

  for (int round = 0; round < 25; ++round) {
    const size_t batch = 1 + rng.Below(12);
    std::map<uint64_t, std::vector<std::byte>> expected;  // Read id -> oracle bytes.
    std::set<uint32_t> written;  // One write per block per batch (WAW is out of scope here).
    for (size_t i = 0; i < batch; ++i) {
      if (rng.Chance(0.45)) {
        // Reads may be unaligned and sub-block: any extent inside the region.
        const uint64_t sectors = 1 + rng.Below(16);
        const simdisk::Lba lba =
            rng.Below(static_cast<uint64_t>(region) * kBlockSectors - sectors);
        auto id = queued.vld->SubmitRead(lba, sectors);
        ASSERT_TRUE(id.ok());
        std::vector<std::byte> want(sectors * kSectorBytes);
        ASSERT_TRUE(oracle.vld->Read(lba, want).ok());
        expected.emplace(*id, std::move(want));
      } else {
        uint32_t b = static_cast<uint32_t>(rng.Below(region));
        while (written.count(b) != 0) {
          b = static_cast<uint32_t>(rng.Below(region));
        }
        written.insert(b);
        const auto payload =
            Pattern(kBlockBytes, static_cast<uint32_t>(seed * 1000 + round * 37 + i));
        ASSERT_TRUE(
            queued.vld->SubmitWrite(static_cast<simdisk::Lba>(b) * kBlockSectors, payload)
                .ok());
        ASSERT_TRUE(
            oracle.vld->Write(static_cast<simdisk::Lba>(b) * kBlockSectors, payload).ok());
      }
    }
    auto done = queued.vld->FlushQueue();
    ASSERT_TRUE(done.ok());
    ASSERT_EQ(done->size(), batch);
    for (const Vld::QueuedCompletion& c : *done) {
      if (c.is_write) {
        continue;
      }
      const auto it = expected.find(c.id);
      ASSERT_NE(it, expected.end());
      EXPECT_EQ(c.data, it->second)
          << "queued read diverged from the synchronous oracle at lba " << c.lba;
      ++reads_checked;
    }
    if (rng.Chance(0.2)) {
      ASSERT_TRUE(queued.vld->Flush().ok());
      ASSERT_TRUE(oracle.vld->Flush().ok());
    }
  }
  EXPECT_GT(reads_checked, 20u) << "the schedule must actually exercise reads";

  std::vector<std::byte> got(kBlockBytes), want(kBlockBytes);
  for (uint32_t b = 0; b < region; ++b) {
    ASSERT_TRUE(queued.vld->Read(static_cast<simdisk::Lba>(b) * kBlockSectors, got).ok());
    ASSERT_TRUE(oracle.vld->Read(static_cast<simdisk::Lba>(b) * kBlockSectors, want).ok());
    ASSERT_EQ(got, want) << "final contents diverged at block " << b;
  }
}

TEST(QueuedReadDifferentialTest, MatchesSyncOracleAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    RunDifferential(seed, /*cache_sectors=*/0);
  }
}

TEST(QueuedReadDifferentialTest, MatchesSyncOracleWithWriteBackCache) {
  for (uint64_t seed = 5; seed <= 6; ++seed) {
    RunDifferential(seed, /*cache_sectors=*/1024);
  }
}

}  // namespace
}  // namespace vlog::core
