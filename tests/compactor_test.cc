#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::core {
namespace {

std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed + i * 13));
  }
  return v;
}

class CompactorTest : public ::testing::Test {
 protected:
  CompactorTest() {
    disk_ = std::make_unique<simdisk::SimDisk>(simdisk::Truncated(simdisk::SeagateSt19101(), 3),
                                               &clock_);
    VldConfig config;
    config.target_empty_tracks = 1000;  // Compact as much as the free space allows.
    vld_ = std::make_unique<Vld>(disk_.get(), config);
    EXPECT_TRUE(vld_->Format().ok());
  }

  uint64_t EmptyTracks() const {
    uint64_t n = 0;
    for (uint64_t t = 0; t < vld_->space().total_tracks(); ++t) {
      n += vld_->space().TrackEmpty(t) ? 1 : 0;
    }
    return n;
  }

  // Fills `fraction` of the logical space then trims every other block, creating scattered
  // holes that only compaction can consolidate into empty tracks.
  void FillWithHoles(double fraction) {
    const uint32_t blocks = static_cast<uint32_t>(vld_->logical_blocks() * fraction);
    for (uint32_t b = 0; b < blocks; ++b) {
      ASSERT_TRUE(vld_->Write(static_cast<simdisk::Lba>(b) * 8, Pattern(4096, b)).ok());
    }
    for (uint32_t b = 0; b < blocks; b += 2) {
      ASSERT_TRUE(vld_->Trim(static_cast<simdisk::Lba>(b) * 8, 8).ok());
    }
  }

  common::Clock clock_;
  std::unique_ptr<simdisk::SimDisk> disk_;
  std::unique_ptr<Vld> vld_;
};

TEST_F(CompactorTest, ProducesEmptyTracksFromScatteredHoles) {
  FillWithHoles(0.9);
  const uint64_t before = EmptyTracks();
  vld_->RunIdle(common::Seconds(10));
  EXPECT_GT(EmptyTracks(), before + 3);
  EXPECT_GT(vld_->compactor().stats().tracks_compacted, 3u);
}

TEST_F(CompactorTest, HolePluggingPacksInsteadOfConsumingEmpties) {
  FillWithHoles(0.9);
  vld_->RunIdle(common::Seconds(10));
  // After compaction at ~45% utilization, nearly all free space should sit in empty tracks:
  // the number of partially-filled tracks must be small.
  uint64_t partial = 0;
  const auto& space = vld_->space();
  for (uint64_t t = 0; t < space.total_tracks(); ++t) {
    if (space.LiveInTrack(t) > 0 && space.FreeInTrack(t) > 0 && !space.TrackHasSystem(t)) {
      ++partial;
    }
  }
  EXPECT_LT(partial, space.total_tracks() / 4);
}

TEST_F(CompactorTest, RespectsDeadline) {
  FillWithHoles(0.9);
  const common::Time start = clock_.Now();
  vld_->RunIdle(common::Milliseconds(40));
  // Track-granularity work: may overshoot by at most roughly one track's compaction.
  EXPECT_LT(clock_.Now() - start, common::Milliseconds(40) + common::Milliseconds(60));
}

TEST_F(CompactorTest, ZeroBudgetDoesNothing) {
  FillWithHoles(0.5);
  const uint64_t runs = vld_->compactor().stats().idle_runs;
  vld_->RunIdle(0);
  EXPECT_EQ(vld_->compactor().stats().idle_runs, runs);
}

TEST_F(CompactorTest, IdleTimeOnCleanDiskIsHarmless) {
  vld_->RunIdle(common::Seconds(1));
  EXPECT_EQ(vld_->compactor().stats().tracks_compacted, 0u);
  // Still fully functional afterwards.
  ASSERT_TRUE(vld_->Write(0, Pattern(4096, 1)).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(vld_->Read(0, out).ok());
  EXPECT_EQ(out, Pattern(4096, 1));
}

TEST_F(CompactorTest, CompactionKeepsEagerWritesFastAtHighUtilization) {
  FillWithHoles(0.9);  // ~45% live after trims, but smeared across every track.
  // Without compaction, steady-state writes pay scattered-hole locate costs; after idle
  // compaction the same writes go to empty fill tracks.
  common::Rng rng(5);
  std::vector<std::byte> block(4096);
  const uint32_t blocks = static_cast<uint32_t>(vld_->logical_blocks() * 0.9);
  auto measure = [&] {
    const common::Time t0 = clock_.Now();
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(vld_->Write(rng.Below(blocks) * 8, block).ok());
    }
    return clock_.Now() - t0;
  };
  const common::Duration before = measure();
  vld_->RunIdle(common::Seconds(10));
  const common::Duration after = measure();
  EXPECT_LT(after, before);
}

TEST_F(CompactorTest, StatsAccumulate) {
  FillWithHoles(0.8);
  vld_->RunIdle(common::Seconds(5));
  const auto& stats = vld_->compactor().stats();
  EXPECT_GE(stats.idle_runs, 1u);
  EXPECT_GT(stats.data_blocks_moved, 0u);
  EXPECT_GT(stats.busy_time, 0);
}

}  // namespace
}  // namespace vlog::core
