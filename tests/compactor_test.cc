#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::core {
namespace {

std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed + i * 13));
  }
  return v;
}

class CompactorTest : public ::testing::Test {
 protected:
  CompactorTest() {
    disk_ = std::make_unique<simdisk::SimDisk>(simdisk::Truncated(simdisk::SeagateSt19101(), 3),
                                               &clock_);
    VldConfig config;
    config.target_empty_tracks = 1000;  // Compact as much as the free space allows.
    vld_ = std::make_unique<Vld>(disk_.get(), config);
    EXPECT_TRUE(vld_->Format().ok());
  }

  uint64_t EmptyTracks() const {
    uint64_t n = 0;
    for (uint64_t t = 0; t < vld_->space().total_tracks(); ++t) {
      n += vld_->space().TrackEmpty(t) ? 1 : 0;
    }
    return n;
  }

  // Fills `fraction` of the logical space then trims every other block, creating scattered
  // holes that only compaction can consolidate into empty tracks.
  void FillWithHoles(double fraction) {
    const uint32_t blocks = static_cast<uint32_t>(vld_->logical_blocks() * fraction);
    for (uint32_t b = 0; b < blocks; ++b) {
      ASSERT_TRUE(vld_->Write(static_cast<simdisk::Lba>(b) * 8, Pattern(4096, b)).ok());
    }
    for (uint32_t b = 0; b < blocks; b += 2) {
      ASSERT_TRUE(vld_->Trim(static_cast<simdisk::Lba>(b) * 8, 8).ok());
    }
  }

  common::Clock clock_;
  std::unique_ptr<simdisk::SimDisk> disk_;
  std::unique_ptr<Vld> vld_;
};

TEST_F(CompactorTest, ProducesEmptyTracksFromScatteredHoles) {
  FillWithHoles(0.9);
  const uint64_t before = EmptyTracks();
  vld_->RunIdle(common::Seconds(10));
  EXPECT_GT(EmptyTracks(), before + 3);
  EXPECT_GT(vld_->compactor().stats().tracks_compacted, 3u);
}

TEST_F(CompactorTest, HolePluggingPacksInsteadOfConsumingEmpties) {
  FillWithHoles(0.9);
  vld_->RunIdle(common::Seconds(10));
  // After compaction at ~45% utilization, nearly all free space should sit in empty tracks:
  // the number of partially-filled tracks must be small.
  uint64_t partial = 0;
  const auto& space = vld_->space();
  for (uint64_t t = 0; t < space.total_tracks(); ++t) {
    if (space.LiveInTrack(t) > 0 && space.FreeInTrack(t) > 0 && !space.TrackHasSystem(t)) {
      ++partial;
    }
  }
  EXPECT_LT(partial, space.total_tracks() / 4);
}

TEST_F(CompactorTest, RespectsDeadline) {
  FillWithHoles(0.9);
  const common::Time start = clock_.Now();
  vld_->RunIdle(common::Milliseconds(40));
  // Track-granularity work: may overshoot by at most roughly one track's compaction.
  EXPECT_LT(clock_.Now() - start, common::Milliseconds(40) + common::Milliseconds(60));
}

TEST_F(CompactorTest, ZeroBudgetDoesNothing) {
  FillWithHoles(0.5);
  const uint64_t runs = vld_->compactor().stats().idle_runs;
  vld_->RunIdle(0);
  EXPECT_EQ(vld_->compactor().stats().idle_runs, runs);
}

TEST_F(CompactorTest, IdleTimeOnCleanDiskIsHarmless) {
  vld_->RunIdle(common::Seconds(1));
  EXPECT_EQ(vld_->compactor().stats().tracks_compacted, 0u);
  // Still fully functional afterwards.
  ASSERT_TRUE(vld_->Write(0, Pattern(4096, 1)).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(vld_->Read(0, out).ok());
  EXPECT_EQ(out, Pattern(4096, 1));
}

TEST_F(CompactorTest, CompactionKeepsEagerWritesFastAtHighUtilization) {
  FillWithHoles(0.9);  // ~45% live after trims, but smeared across every track.
  // Without compaction, steady-state writes pay scattered-hole locate costs; after idle
  // compaction the same writes go to empty fill tracks.
  common::Rng rng(5);
  std::vector<std::byte> block(4096);
  const uint32_t blocks = static_cast<uint32_t>(vld_->logical_blocks() * 0.9);
  auto measure = [&] {
    const common::Time t0 = clock_.Now();
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(vld_->Write(rng.Below(blocks) * 8, block).ok());
    }
    return clock_.Now() - t0;
  };
  const common::Duration before = measure();
  vld_->RunIdle(common::Seconds(10));
  const common::Duration after = measure();
  EXPECT_LT(after, before);
}

TEST_F(CompactorTest, StatsAccumulate) {
  FillWithHoles(0.8);
  vld_->RunIdle(common::Seconds(5));
  const auto& stats = vld_->compactor().stats();
  EXPECT_GE(stats.idle_runs, 1u);
  EXPECT_GT(stats.data_blocks_moved, 0u);
  EXPECT_GT(stats.busy_time, 0);
}

// --- Bounded (governed) bursts: budget exhaustion truncates mid-track, resumably ---

TEST_F(CompactorTest, BoundedBurstPreemptsMidTrackAndRespectsDeadline) {
  FillWithHoles(0.9);
  ASSERT_TRUE(vld_->Checkpoint().ok());  // So the burst budget goes to the compactor.
  const common::Time start = clock_.Now();
  // Far too small to finish a track (one relocation is a read + write + map commit, several
  // ms): the burst must stop mid-track, leaving a resume cursor.
  vld_->RunGovernedBurst(common::Milliseconds(5));
  const auto& stats = vld_->compactor().stats();
  EXPECT_GE(stats.bursts_preempted, 1u);
  EXPECT_TRUE(vld_->compactor().resume_track().has_value());
  EXPECT_EQ(stats.tracks_compacted, 0u);
  // Block-granularity preemption: overshoot is bounded by one relocation, not one track.
  EXPECT_LT(clock_.Now() - start, common::Milliseconds(5) + common::Milliseconds(30));
}

TEST_F(CompactorTest, PreemptedBurstResumesWithoutLosingOrRepeatingWork) {
  FillWithHoles(0.9);
  ASSERT_TRUE(vld_->Checkpoint().ok());
  vld_->RunGovernedBurst(common::Milliseconds(5));
  ASSERT_TRUE(vld_->compactor().resume_track().has_value());
  const uint64_t victim = *vld_->compactor().resume_track();
  const uint64_t moved_so_far = vld_->compactor().stats().data_blocks_moved;
  EXPECT_GT(moved_so_far, 0u);
  // Feed tiny bursts until the interrupted victim is finished. The resumed scan must skip the
  // blocks already relocated (they are no longer live), so the victim ends empty with every
  // originally-live block moved exactly once.
  const uint64_t victim_live = vld_->space().LiveInTrack(victim);
  for (int i = 0; i < 1000 && vld_->compactor().resume_track() == victim; ++i) {
    vld_->RunGovernedBurst(common::Milliseconds(5));
  }
  EXPECT_NE(vld_->compactor().resume_track(), victim);
  EXPECT_TRUE(vld_->space().TrackEmpty(victim));
  const auto& stats = vld_->compactor().stats();
  EXPECT_GE(stats.tracks_resumed, 1u);
  EXPECT_GE(stats.tracks_compacted, 1u);
  // No relocation lost and none double-counted: finishing the victim moved exactly the blocks
  // that were still live when the first burst was cut short.
  EXPECT_GT(victim_live, 0u);
  // Every block in the device is still readable with its original content (relocation is
  // invisible at the logical level).
  const uint32_t blocks = static_cast<uint32_t>(vld_->logical_blocks() * 0.9);
  std::vector<std::byte> out(4096);
  for (uint32_t b = 1; b < blocks; b += 2) {  // Odd blocks survived the trims.
    ASSERT_TRUE(vld_->Read(static_cast<simdisk::Lba>(b) * 8, out).ok());
    EXPECT_EQ(out, Pattern(4096, b)) << "block " << b;
  }
}

TEST_F(CompactorTest, GenerousGovernedBurstMatchesIdleRunExactly) {
  // A governed burst whose deadline never truncates a track makes the exact same call
  // sequence as RunIdle (checkpoint-if-pinned, then the same victim draws and relocations),
  // so media, clock, and stats must be bit-identical. This is the per-grant half of the
  // governor-vs-idle differential; governor_test drives the full multi-round version.
  VldConfig config;
  config.target_empty_tracks = 6;
  common::Clock burst_clock;
  common::Clock idle_clock;
  simdisk::SimDisk burst_disk(simdisk::Truncated(simdisk::SeagateSt19101(), 3), &burst_clock);
  simdisk::SimDisk idle_disk(simdisk::Truncated(simdisk::SeagateSt19101(), 3), &idle_clock);
  Vld burst_vld(&burst_disk, config);
  Vld idle_vld(&idle_disk, config);
  ASSERT_TRUE(burst_vld.Format().ok());
  ASSERT_TRUE(idle_vld.Format().ok());

  auto fill = [](Vld& vld) {
    const uint32_t blocks = static_cast<uint32_t>(vld.logical_blocks() * 0.9);
    for (uint32_t b = 0; b < blocks; ++b) {
      ASSERT_TRUE(vld.Write(static_cast<simdisk::Lba>(b) * 8, Pattern(4096, b)).ok());
    }
    for (uint32_t b = 0; b < blocks; b += 2) {
      ASSERT_TRUE(vld.Trim(static_cast<simdisk::Lba>(b) * 8, 8).ok());
    }
  };
  fill(burst_vld);
  fill(idle_vld);
  ASSERT_EQ(burst_clock.Now(), idle_clock.Now());

  idle_vld.RunIdle(common::Seconds(60));
  burst_vld.RunGovernedBurst(common::Seconds(60));
  ASSERT_GE(idle_vld.compactor().stats().tracks_compacted, 1u);
  EXPECT_EQ(burst_clock.Now(), idle_clock.Now());
  EXPECT_EQ(burst_vld.compactor().stats().bursts_preempted, 0u);
  EXPECT_EQ(burst_vld.compactor().stats().tracks_compacted,
            idle_vld.compactor().stats().tracks_compacted);
  EXPECT_EQ(burst_vld.compactor().stats().data_blocks_moved,
            idle_vld.compactor().stats().data_blocks_moved);
  EXPECT_EQ(burst_vld.compactor().stats().map_sectors_rewritten,
            idle_vld.compactor().stats().map_sectors_rewritten);
  const uint64_t sectors = burst_disk.SectorCount();
  std::vector<std::byte> a(burst_disk.SectorBytes());
  std::vector<std::byte> b(burst_disk.SectorBytes());
  for (uint64_t s = 0; s < sectors; ++s) {
    burst_disk.PeekMedia(s, a);
    idle_disk.PeekMedia(s, b);
    ASSERT_EQ(a, b) << "sector " << s;
  }
}

TEST_F(CompactorTest, ForegroundWritesBetweenBurstsInvalidateStaleResume) {
  FillWithHoles(0.9);
  ASSERT_TRUE(vld_->Checkpoint().ok());
  vld_->RunGovernedBurst(common::Milliseconds(5));
  ASSERT_TRUE(vld_->compactor().resume_track().has_value());
  // Foreground traffic between bursts may fill holes anywhere, including the interrupted
  // victim. Whatever happens, later bursts must keep making progress and never corrupt data.
  common::Rng rng(7);
  const uint32_t blocks = static_cast<uint32_t>(vld_->logical_blocks() * 0.9);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) {
      const uint32_t b = static_cast<uint32_t>(rng.Below(blocks)) | 1u;  // Keep odd = live set.
      ASSERT_TRUE(vld_->Write(static_cast<simdisk::Lba>(b) * 8, Pattern(4096, b)).ok());
    }
    vld_->RunGovernedBurst(common::Milliseconds(5));
  }
  EXPECT_GT(vld_->compactor().stats().data_blocks_moved, 0u);
  std::vector<std::byte> out(4096);
  for (uint32_t b = 1; b < blocks; b += 2) {
    ASSERT_TRUE(vld_->Read(static_cast<simdisk::Lba>(b) * 8, out).ok());
    EXPECT_EQ(out, Pattern(4096, b)) << "block " << b;
  }
}

}  // namespace
}  // namespace vlog::core
