// Parameterized VLD properties: the invariants must hold for every (disk model, physical block
// size, compactor mode) combination, not just the defaults.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <memory>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::core {
namespace {

using VldParam = std::tuple<bool /*hp disk*/, uint32_t /*block sectors*/, bool /*compactor*/>;

class VldParamTest : public ::testing::TestWithParam<VldParam> {
 protected:
  VldParamTest() {
    const auto [hp, block_sectors, compactor] = GetParam();
    disk_ = std::make_unique<simdisk::SimDisk>(
        simdisk::Truncated(hp ? simdisk::Hp97560() : simdisk::SeagateSt19101(), hp ? 8 : 3),
        &clock_);
    config_.block_sectors = block_sectors;
    config_.compactor_enabled = compactor;
    vld_ = std::make_unique<Vld>(disk_.get(), config_);
    EXPECT_TRUE(vld_->Format().ok());
  }

  void Reopen() { vld_ = std::make_unique<Vld>(disk_.get(), config_); }

  std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
    std::vector<std::byte> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 31 + i));
    }
    return v;
  }

  common::Clock clock_;
  VldConfig config_;
  std::unique_ptr<simdisk::SimDisk> disk_;
  std::unique_ptr<Vld> vld_;
};

TEST_P(VldParamTest, WriteReadTrimRecoverProperty) {
  common::Rng rng(std::get<1>(GetParam()) * 1000 + (std::get<0>(GetParam()) ? 1 : 0));
  const uint32_t blocks = std::min<uint32_t>(vld_->logical_blocks(), 600);
  const uint32_t bs = vld_->block_sectors();
  std::vector<std::vector<std::byte>> shadow(blocks);
  const size_t block_bytes = static_cast<size_t>(bs) * 512;

  for (int round = 0; round < 4; ++round) {
    for (int op = 0; op < 60; ++op) {
      const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
      const double dice = rng.NextDouble();
      if (dice < 0.72) {
        auto data = Pattern(block_bytes, static_cast<uint32_t>(round * 100 + op));
        ASSERT_TRUE(vld_->Write(static_cast<simdisk::Lba>(b) * bs, data).ok());
        shadow[b] = std::move(data);
      } else if (dice < 0.85) {
        ASSERT_TRUE(vld_->Trim(static_cast<simdisk::Lba>(b) * bs, bs).ok());
        shadow[b].clear();
      } else {
        vld_->RunIdle(common::Milliseconds(30));
      }
    }
    const bool clean = rng.Chance(0.5);
    if (clean) {
      ASSERT_TRUE(vld_->Park().ok());
    }
    Reopen();
    auto info = vld_->Recover();
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    std::vector<std::byte> out(block_bytes);
    for (uint32_t b = 0; b < blocks; ++b) {
      ASSERT_TRUE(vld_->Read(static_cast<simdisk::Lba>(b) * bs, out).ok());
      if (shadow[b].empty()) {
        ASSERT_EQ(out, std::vector<std::byte>(block_bytes)) << "round " << round << " b " << b;
      } else {
        ASSERT_EQ(out, shadow[b]) << "round " << round << " block " << b;
      }
    }
  }
}

TEST_P(VldParamTest, UtilizationAccountingConsistent) {
  const uint32_t bs = vld_->block_sectors();
  const size_t block_bytes = static_cast<size_t>(bs) * 512;
  const uint64_t live_before = vld_->space().live_blocks();
  for (uint32_t b = 0; b < 50; ++b) {
    ASSERT_TRUE(vld_->Write(static_cast<simdisk::Lba>(b) * bs, Pattern(block_bytes, b)).ok());
  }
  // 50 data blocks plus at most a handful of live/pinned map-sector blocks.
  const uint64_t live = vld_->space().live_blocks() - live_before;
  EXPECT_GE(live, 50u);
  EXPECT_LE(live, 50u + vld_->vlog().config().pieces + vld_->vlog().PinnedCount());
  ASSERT_TRUE(vld_->Trim(0, 50 * bs).ok());
  EXPECT_LT(vld_->space().live_blocks(), live_before + live);
}

std::string ParamName(const ::testing::TestParamInfo<VldParam>& param_info) {
  return std::string(std::get<0>(param_info.param) ? "Hp" : "Seagate") + "Bs" +
         std::to_string(std::get<1>(param_info.param)) +
         (std::get<2>(param_info.param) ? "Compact" : "Greedy");
}

INSTANTIATE_TEST_SUITE_P(
    DiskAndBlockMatrix, VldParamTest,
    ::testing::Combine(::testing::Bool(), ::testing::Values(2u, 4u, 8u), ::testing::Bool()),
    ParamName);

}  // namespace
}  // namespace vlog::core
