#include "src/simdisk/write_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/time.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/request_queue.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::simdisk {
namespace {

std::vector<std::byte> Pattern(uint32_t tag, size_t bytes) {
  std::vector<std::byte> data(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::byte>((tag * 131u + i * 7u) & 0xFF);
  }
  return data;
}

TEST(WriteCacheTest, DisabledByDefault) {
  WriteCache cache;
  EXPECT_FALSE(cache.enabled());
  EXPECT_TRUE(cache.clean());
  EXPECT_EQ(cache.dirty_sectors(), 0u);
}

TEST(WriteCacheTest, InsertCoalescesAdjacentAndOverlappingExtents) {
  WriteCache cache(WriteCacheParams{.capacity_sectors = 64});
  EXPECT_FALSE(cache.Insert(8, 4));
  EXPECT_FALSE(cache.Insert(12, 4));  // Adjacent: one extent [8, 16).
  EXPECT_FALSE(cache.Insert(10, 4));  // Fully contained in [8, 16).
  EXPECT_EQ(cache.dirty_sectors(), 8u);
  EXPECT_TRUE(cache.Contains(8, 8));
  EXPECT_FALSE(cache.Contains(7, 2));
  EXPECT_FALSE(cache.Contains(15, 2));
  const auto extents = cache.Drain();
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].lba, 8u);
  EXPECT_EQ(extents[0].sectors, 8u);
  EXPECT_TRUE(cache.clean());
}

TEST(WriteCacheTest, InsertReportsCapacityOverflow) {
  WriteCache cache(WriteCacheParams{.capacity_sectors = 8});
  EXPECT_FALSE(cache.Insert(0, 8));
  EXPECT_TRUE(cache.Insert(100, 1)) << "ninth dirty sector must exceed capacity 8";
}

TEST(WriteCacheTest, DiscardPunchesHolesWithoutDestaging) {
  WriteCache cache(WriteCacheParams{.capacity_sectors = 64});
  cache.Insert(0, 10);
  cache.Discard(4, 2);
  EXPECT_EQ(cache.dirty_sectors(), 8u);
  EXPECT_TRUE(cache.Contains(0, 4));
  EXPECT_FALSE(cache.Contains(4, 2));
  EXPECT_TRUE(cache.Contains(6, 4));
  const auto extents = cache.Drain();
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0].lba, 0u);
  EXPECT_EQ(extents[0].sectors, 4u);
  EXPECT_EQ(extents[1].lba, 6u);
  EXPECT_EQ(extents[1].sectors, 4u);
}

TEST(WriteCacheTest, DrainOrdersLbaAscendingOrFifo) {
  WriteCache lba_cache(WriteCacheParams{.capacity_sectors = 64});
  lba_cache.Insert(40, 2);
  lba_cache.Insert(8, 2);
  lba_cache.Insert(24, 2);
  auto by_lba = lba_cache.Drain();
  ASSERT_EQ(by_lba.size(), 3u);
  EXPECT_EQ(by_lba[0].lba, 8u);
  EXPECT_EQ(by_lba[1].lba, 24u);
  EXPECT_EQ(by_lba[2].lba, 40u);

  WriteCache fifo_cache(
      WriteCacheParams{.capacity_sectors = 64, .order = DestageOrder::kFifo});
  fifo_cache.Insert(40, 2);
  fifo_cache.Insert(8, 2);
  fifo_cache.Insert(24, 2);
  auto fifo = fifo_cache.Drain();
  ASSERT_EQ(fifo.size(), 3u);
  EXPECT_EQ(fifo[0].lba, 40u);
  EXPECT_EQ(fifo[1].lba, 8u);
  EXPECT_EQ(fifo[2].lba, 24u);
}

// ---------------------------------------------------------------------------
// SimDisk integration: ack timing, flush accounting, FUA, and read hits.
// ---------------------------------------------------------------------------

class CachedDiskTest : public ::testing::Test {
 protected:
  static DiskParams Cached(uint64_t capacity) {
    DiskParams params = Truncated(Hp97560(), 2);
    params.cache.capacity_sectors = capacity;
    return params;
  }

  common::Clock clock_;
};

TEST_F(CachedDiskTest, CachedWriteAcksWithoutMechanicalWorkAndFlushPaysIt) {
  SimDisk cached(Cached(256), &clock_);
  const auto data = Pattern(1, 4 * 512);
  ASSERT_TRUE(cached.Write(100, data).ok());
  EXPECT_EQ(cached.cache_dirty_sectors(), 4u);
  // Ack covers controller + bus only: no positioning or media-rate transfer.
  EXPECT_EQ(cached.last_request().locate, 0);
  EXPECT_EQ(cached.last_request().flush, 0);
  EXPECT_EQ(cached.stats().cached_writes, 1u);

  // The data is already readable (the media model is poked at ack time).
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(cached.Read(100, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(cached.stats().cache_read_hits, 1u);

  const common::Time before = clock_.Now();
  ASSERT_TRUE(cached.Flush().ok());
  EXPECT_GT(clock_.Now(), before) << "destage must pay the deferred mechanical cost";
  EXPECT_GT(cached.last_request().flush, 0);
  EXPECT_EQ(cached.cache_dirty_sectors(), 0u);
  EXPECT_EQ(cached.stats().flushes, 1u);
  EXPECT_EQ(cached.stats().destaged_sectors, 4u);
}

// A queued read of an extent whose write is still dirty in the volatile cache must return the
// acknowledged bytes (the media model is poked at ack time), without forcing a destage.
TEST_F(CachedDiskTest, QueuedReadOfCacheDirtyExtentReturnsAcknowledgedBytes) {
  SimDisk disk(Cached(256), &clock_);
  RequestQueue queue(&disk, {.depth = 4, .policy = SchedulerPolicy::kSptf});
  const auto data = Pattern(3, 8 * 512);
  ASSERT_TRUE(queue.SubmitWrite(120, data).ok());
  ASSERT_TRUE(queue.ServiceOne().ok());
  ASSERT_EQ(disk.cache_dirty_sectors(), 8u) << "the queued write must land dirty in the cache";

  ASSERT_TRUE(queue.SubmitRead(120, 8).ok());
  auto done = queue.ServiceOne();
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done->is_write);
  EXPECT_EQ(done->data, data) << "the read must see the volatile acknowledged bytes";
  EXPECT_EQ(disk.cache_dirty_sectors(), 8u) << "the read must not destage the cache";
  EXPECT_GE(disk.stats().cache_read_hits, 1u);
}

TEST_F(CachedDiskTest, EmptyFlushIsFree) {
  SimDisk disk(Cached(256), &clock_);
  const common::Time before = clock_.Now();
  ASSERT_TRUE(disk.Flush().ok());
  EXPECT_EQ(clock_.Now(), before);
  EXPECT_EQ(disk.stats().flushes, 1u);
  EXPECT_EQ(disk.stats().destaged_sectors, 0u);
}

TEST_F(CachedDiskTest, DisabledCacheFlushIsTotalNoOp) {
  SimDisk disk(Truncated(Hp97560(), 2), &clock_);
  ASSERT_TRUE(disk.Write(64, Pattern(2, 2 * 512)).ok());
  const common::Time before = clock_.Now();
  ASSERT_TRUE(disk.Flush().ok());
  EXPECT_EQ(clock_.Now(), before);
  EXPECT_EQ(disk.stats().flushes, 0u) << "write-through Flush must not even count";
  EXPECT_EQ(disk.stats().cached_writes, 0u);
}

TEST_F(CachedDiskTest, FuaWriteBypassesCacheAndSupersedesDirtyCopy) {
  SimDisk disk(Cached(256), &clock_);
  ASSERT_TRUE(disk.Write(100, Pattern(3, 4 * 512)).ok());
  EXPECT_EQ(disk.cache_dirty_sectors(), 4u);
  const auto fresh = Pattern(4, 4 * 512);
  ASSERT_TRUE(disk.WriteFua(100, fresh).ok());
  EXPECT_EQ(disk.cache_dirty_sectors(), 0u) << "FUA supersedes the overlapping dirty extent";
  EXPECT_EQ(disk.stats().fua_writes, 1u);
  std::vector<std::byte> out(fresh.size());
  ASSERT_TRUE(disk.Read(100, out).ok());
  EXPECT_EQ(out, fresh);
}

TEST_F(CachedDiskTest, CapacityPressureDrainsWithoutCountingAsFlush) {
  SimDisk disk(Cached(8), &clock_);
  bool flushed = false;
  disk.set_flush_observer([&] { flushed = true; });
  ASSERT_TRUE(disk.Write(0, Pattern(5, 8 * 512)).ok());
  EXPECT_FALSE(flushed);
  ASSERT_TRUE(disk.Write(64, Pattern(6, 512)).ok());  // Ninth dirty sector: over capacity.
  EXPECT_TRUE(flushed) << "a pressure drain is a durability event";
  EXPECT_EQ(disk.cache_dirty_sectors(), 0u);
  EXPECT_EQ(disk.stats().flushes, 0u) << "pressure drains are not host flushes";
  EXPECT_EQ(disk.stats().destaged_sectors, 9u);
}

TEST_F(CachedDiskTest, ObserverReportsDurability) {
  SimDisk disk(Cached(256), &clock_);
  std::vector<bool> durables;
  disk.set_write_observer(
      [&](Lba, std::span<const std::byte>, bool durable) { durables.push_back(durable); });
  ASSERT_TRUE(disk.Write(0, Pattern(7, 512)).ok());
  ASSERT_TRUE(disk.WriteFua(8, Pattern(8, 512)).ok());
  ASSERT_TRUE(disk.InternalWrite(16, Pattern(9, 512)).ok());
  ASSERT_EQ(durables.size(), 3u);
  EXPECT_FALSE(durables[0]);
  EXPECT_TRUE(durables[1]);
  EXPECT_FALSE(durables[2]);
}

// The acceptance-critical identity: with capacity 0 the cached code paths must be bit-identical
// to the write-through model — same clock, same stats, same media.
TEST_F(CachedDiskTest, ZeroCapacityIsBitIdenticalToWriteThrough) {
  common::Clock clock_a;
  common::Clock clock_b;
  SimDisk plain(Truncated(Hp97560(), 2), &clock_a);
  DiskParams zero = Truncated(Hp97560(), 2);
  zero.cache.capacity_sectors = 0;
  SimDisk cached(zero, &clock_b);

  for (uint32_t i = 0; i < 16; ++i) {
    const Lba lba = (i * 37) % 512;
    const auto data = Pattern(i, 2 * 512);
    ASSERT_TRUE(plain.Write(lba, data).ok());
    ASSERT_TRUE(cached.Write(lba, data).ok());
    ASSERT_TRUE(cached.Flush().ok());  // Must be a free no-op.
    ASSERT_EQ(clock_a.Now(), clock_b.Now()) << "clock diverged at write " << i;
  }
  std::vector<std::byte> a(2 * 512);
  std::vector<std::byte> b(2 * 512);
  ASSERT_TRUE(plain.Read(37, a).ok());
  ASSERT_TRUE(cached.Read(37, b).ok());
  EXPECT_EQ(a, b);
  EXPECT_EQ(clock_a.Now(), clock_b.Now());
  EXPECT_EQ(plain.stats().sectors_written, cached.stats().sectors_written);
  EXPECT_EQ(cached.stats().cached_writes, 0u);
  EXPECT_EQ(cached.stats().flushes, 0u);
}

}  // namespace
}  // namespace vlog::simdisk
