// Property tests for the NVM staging tier's log recovery: torn tails are detected via
// per-record CRCs and dropped without losing earlier records, swept exhaustively at every
// cache-line boundary of the final append; stale prior-epoch bytes never replay.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/nvm/nvm_stage.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/nvm_device.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::core {
namespace {

constexpr uint32_t kSectorBytes = 512;

std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 131 + i * 7 + 13));
  }
  return v;
}

class NvmStageTest : public ::testing::Test {
 protected:
  NvmStageTest() {
    disk_ = std::make_unique<simdisk::SimDisk>(
        simdisk::Truncated(simdisk::SeagateSt19101(), 3), &clock_);
    vld_ = std::make_unique<Vld>(disk_.get(), VldConfig{});
    EXPECT_TRUE(vld_->Format().ok());
    nvm_ = std::make_unique<simdisk::NvmDevice>(nvm_params_, &clock_);
    stage_ = std::make_unique<NvmStage>(nvm_.get(), vld_.get(), config_);
    EXPECT_TRUE(stage_->Format().ok());
  }

  // A fresh stage over the same backing VLD, adopting `image` as the NVM contents — the
  // post-crash recovery path.
  std::pair<std::unique_ptr<simdisk::NvmDevice>, std::unique_ptr<NvmStage>> Reopen(
      std::vector<std::byte> image) {
    auto nvm = std::make_unique<simdisk::NvmDevice>(nvm_params_, &clock_, std::move(image));
    auto stage = std::make_unique<NvmStage>(nvm.get(), vld_.get(), config_);
    return {std::move(nvm), std::move(stage)};
  }

  common::Clock clock_;
  simdisk::NvmDeviceParams nvm_params_;
  NvmStageConfig config_;
  std::unique_ptr<simdisk::SimDisk> disk_;
  std::unique_ptr<Vld> vld_;
  std::unique_ptr<simdisk::NvmDevice> nvm_;
  std::unique_ptr<NvmStage> stage_;
};

TEST_F(NvmStageTest, RecordBytesPadsToCacheLines) {
  EXPECT_EQ(NvmStage::RecordBytes(0, 64), 64u);       // Header alone fits one line.
  EXPECT_EQ(NvmStage::RecordBytes(16, 64), 64u);      // 48 + 16 = exactly one line.
  EXPECT_EQ(NvmStage::RecordBytes(17, 64), 128u);
  EXPECT_EQ(NvmStage::RecordBytes(512, 64), 576u);    // 48 + 512 = 560 -> 9 lines.
  EXPECT_EQ(NvmStage::RecordBytes(4096, 64), 4160u);  // 48 + 4096 = 4144 -> 65 lines.
}

TEST_F(NvmStageTest, SmallWriteIsStagedAndReadBack) {
  const auto data = Pattern(kSectorBytes, 1);
  ASSERT_TRUE(stage_->Write(10, data).ok());
  EXPECT_EQ(stage_->staged_sectors(), 1u);
  EXPECT_EQ(stage_->stats().staged_writes, 1u);
  std::vector<std::byte> out(kSectorBytes);
  ASSERT_TRUE(stage_->Read(10, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(stage_->stats().read_hit_sectors, 1u);
  // The backing device has not seen the write yet.
  std::vector<std::byte> backing(kSectorBytes);
  ASSERT_TRUE(vld_->Read(10, backing).ok());
  EXPECT_NE(backing, data);
}

TEST_F(NvmStageTest, LargeWriteGoesDirect) {
  const auto data = Pattern(kSectorBytes * (config_.stage_threshold_sectors + 1), 2);
  ASSERT_TRUE(stage_->Write(64, data).ok());
  EXPECT_EQ(stage_->staged_sectors(), 0u);
  EXPECT_EQ(stage_->stats().direct_writes, 1u);
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(vld_->Read(64, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(NvmStageTest, ReadMergesStagedAndBackingSectors) {
  const auto base = Pattern(kSectorBytes * 8, 3);
  ASSERT_TRUE(stage_->Write(0, base).ok());  // 8 sectors: staged (== threshold).
  ASSERT_TRUE(stage_->Drain().ok());         // Now on the backing device.
  const auto patch = Pattern(kSectorBytes, 4);
  ASSERT_TRUE(stage_->Write(3, patch).ok());  // Staged overlay over sector 3.
  std::vector<std::byte> out(kSectorBytes * 8);
  ASSERT_TRUE(stage_->Read(0, out).ok());
  auto expect = base;
  std::memcpy(expect.data() + 3 * kSectorBytes, patch.data(), kSectorBytes);
  EXPECT_EQ(out, expect);
}

TEST_F(NvmStageTest, DrainDestagesEverythingAndResetsTheLog) {
  for (uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(stage_->Write(i * 4, Pattern(kSectorBytes * 2, 10 + i)).ok());
  }
  const uint64_t epoch_before = stage_->epoch();
  ASSERT_TRUE(stage_->Drain().ok());
  EXPECT_EQ(stage_->staged_sectors(), 0u);
  EXPECT_EQ(stage_->log_records(), 0u);
  EXPECT_EQ(stage_->log_bytes(), 0u);
  EXPECT_GT(stage_->epoch(), epoch_before);
  for (uint32_t i = 0; i < 20; ++i) {
    std::vector<std::byte> out(kSectorBytes * 2);
    ASSERT_TRUE(vld_->Read(i * 4, out).ok());
    EXPECT_EQ(out, Pattern(kSectorBytes * 2, 10 + i)) << "block " << i;
  }
}

TEST_F(NvmStageTest, OverlappingDirectWriteInvalidatesStagedCopy) {
  ASSERT_TRUE(stage_->Write(100, Pattern(kSectorBytes, 5)).ok());
  // A 9-sector direct write overlapping the staged sector must win.
  const auto big = Pattern(kSectorBytes * 9, 6);
  ASSERT_TRUE(stage_->Write(96, big).ok());
  EXPECT_EQ(stage_->staged_sectors(), 0u);
  EXPECT_GE(stage_->stats().invalidates, 1u);
  EXPECT_GE(stage_->stats().conflict_destages, 1u);
  std::vector<std::byte> out(big.size());
  ASSERT_TRUE(stage_->Read(96, out).ok());
  EXPECT_EQ(out, big);
}

TEST_F(NvmStageTest, RunDestageBurstRetiresOldestRecordsUnderBudget) {
  for (uint32_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(stage_->Write(i * 2, Pattern(kSectorBytes, 20 + i)).ok());
  }
  ASSERT_EQ(stage_->log_records(), 32u);
  auto retired = stage_->RunDestageBurst(common::Milliseconds(5));
  ASSERT_TRUE(retired.ok());
  EXPECT_GT(*retired, 0u);
  EXPECT_LT(stage_->log_records(), 32u);
  // Everything retired so far must already be readable (and durable) on the backing device.
  for (uint32_t i = 0; i < *retired && i < 32; ++i) {
    std::vector<std::byte> out(kSectorBytes);
    ASSERT_TRUE(vld_->Read(i * 2, out).ok());
    EXPECT_EQ(out, Pattern(kSectorBytes, 20 + i)) << "record " << i;
  }
}

TEST_F(NvmStageTest, OverflowTriggersDrainAndEpochReset) {
  simdisk::NvmDeviceParams tiny = nvm_params_;
  tiny.size_bytes = 8 * 1024;  // Room for a handful of records only.
  auto nvm = std::make_unique<simdisk::NvmDevice>(tiny, &clock_);
  NvmStage stage(nvm.get(), vld_.get(), config_);
  ASSERT_TRUE(stage.Format().ok());
  for (uint32_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(stage.Write(i * 2, Pattern(kSectorBytes, i)).ok());
  }
  EXPECT_GT(stage.stats().overflow_drains, 0u);
  ASSERT_TRUE(stage.Drain().ok());
  for (uint32_t i = 0; i < 64; ++i) {
    std::vector<std::byte> out(kSectorBytes);
    ASSERT_TRUE(vld_->Read(i * 2, out).ok());
    EXPECT_EQ(out, Pattern(kSectorBytes, i)) << "write " << i;
  }
}

TEST_F(NvmStageTest, QueuedPassthroughsRequireAVldBacking) {
  auto nvm = std::make_unique<simdisk::NvmDevice>(nvm_params_, &clock_);
  NvmStage raw(nvm.get(), static_cast<simdisk::BlockDevice*>(disk_.get()), config_);
  ASSERT_TRUE(raw.Format().ok());
  EXPECT_FALSE(raw.Trim(0, 8).ok());
  EXPECT_FALSE(raw.SubmitWrite(0, Pattern(kSectorBytes, 1)).ok());
  EXPECT_FALSE(raw.SubmitRead(0, 8).ok());
  EXPECT_FALSE(raw.FlushQueue().ok());
}

TEST_F(NvmStageTest, RecoverReplaysAcknowledgedStagedWrites) {
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(stage_->Write(i * 8, Pattern(kSectorBytes * 2, 40 + i)).ok());
  }
  auto [nvm2, stage2] = Reopen(nvm_->Snapshot());
  auto info = stage2->Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->data_records, 8u);
  EXPECT_FALSE(info->torn_tail_dropped);
  EXPECT_EQ(info->staged_sectors, 16u);
  for (uint32_t i = 0; i < 8; ++i) {
    std::vector<std::byte> out(kSectorBytes * 2);
    ASSERT_TRUE(stage2->Read(i * 8, out).ok());
    EXPECT_EQ(out, Pattern(kSectorBytes * 2, 40 + i)) << "record " << i;
  }
}

TEST_F(NvmStageTest, RecoverAfterPartialDestageReplaysFromTheMidLogHead) {
  for (uint32_t i = 0; i < 24; ++i) {
    ASSERT_TRUE(stage_->Write(i * 4, Pattern(kSectorBytes, 50 + i)).ok());
  }
  // Retire one batch: the persisted head now points at a mid-log record whose sequence
  // number is far from 1.
  auto retired = stage_->RunDestageBurst(common::Milliseconds(1));
  ASSERT_TRUE(retired.ok());
  ASSERT_GT(*retired, 0u);
  ASSERT_LT(*retired, 24u);
  auto [nvm2, stage2] = Reopen(nvm_->Snapshot());
  auto info = stage2->Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->data_records, 24u - *retired);
  EXPECT_FALSE(info->torn_tail_dropped);
  // Every acknowledged write is readable: destaged ones from the backing device, live ones
  // from the replayed overlay.
  for (uint32_t i = 0; i < 24; ++i) {
    std::vector<std::byte> out(kSectorBytes);
    ASSERT_TRUE(stage2->Read(i * 4, out).ok());
    EXPECT_EQ(out, Pattern(kSectorBytes, 50 + i)) << "record " << i;
  }
}

TEST_F(NvmStageTest, RecoverHonorsInvalidateRecords) {
  ASSERT_TRUE(stage_->Write(200, Pattern(kSectorBytes, 7)).ok());
  // A direct overlapping write destages + invalidates; the overlay must not resurrect the
  // staged copy over it after recovery.
  const auto winner = Pattern(kSectorBytes * 9, 8);
  ASSERT_TRUE(stage_->Write(200, winner).ok());
  auto [nvm2, stage2] = Reopen(nvm_->Snapshot());
  auto info = stage2->Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->invalidate_records, 1u);
  EXPECT_EQ(info->staged_sectors, 0u);
  std::vector<std::byte> out(winner.size());
  ASSERT_TRUE(stage2->Read(200, out).ok());
  EXPECT_EQ(out, winner);
}

TEST_F(NvmStageTest, RecoverRejectsStalePriorEpochRecords) {
  // Fill and drain: the log resets and the epoch bumps, but the old records' bytes are still
  // physically present past the reset point.
  for (uint32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(stage_->Write(i * 4, Pattern(kSectorBytes * 2, 60 + i)).ok());
  }
  ASSERT_TRUE(stage_->Drain().ok());
  ASSERT_TRUE(stage_->Write(300, Pattern(kSectorBytes, 70)).ok());
  auto [nvm2, stage2] = Reopen(nvm_->Snapshot());
  auto info = stage2->Recover();
  ASSERT_TRUE(info.ok());
  // Only the fresh-epoch record replays; the stale bytes beyond it fail the epoch check and
  // read as a clean log end, not a torn tail.
  EXPECT_EQ(info->data_records, 1u);
  EXPECT_FALSE(info->torn_tail_dropped);
  EXPECT_EQ(info->staged_sectors, 1u);
}

TEST_F(NvmStageTest, RecoverOnUnformattedNvmStartsEmpty) {
  auto nvm = std::make_unique<simdisk::NvmDevice>(nvm_params_, &clock_);
  NvmStage stage(nvm.get(), vld_.get(), config_);
  auto info = stage.Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->data_records, 0u);
  EXPECT_EQ(info->staged_sectors, 0u);
  EXPECT_GT(info->epoch, 0u);
  // And the stage is usable immediately.
  ASSERT_TRUE(stage.Write(0, Pattern(kSectorBytes, 1)).ok());
  EXPECT_EQ(stage.staged_sectors(), 1u);
}

// The exhaustive tear sweep: a crash mid-append persists a line-aligned prefix of the new
// record while the bytes beyond keep their pre-append contents. Every cut must recover all
// earlier records and never replay a partial one.
TEST_F(NvmStageTest, ExhaustiveCacheLineTearSweepOverFinalAppend) {
  const uint32_t line = nvm_params_.cache_line_bytes;
  constexpr uint32_t kPriorRecords = 5;
  for (uint32_t i = 0; i < kPriorRecords; ++i) {
    ASSERT_TRUE(stage_->Write(i * 8, Pattern(kSectorBytes, 80 + i)).ok());
  }
  const auto pre = nvm_->Snapshot();
  const uint64_t record_offset = NvmStage::kSuperblockBytes + stage_->log_bytes();
  const auto final_data = Pattern(kSectorBytes * 3, 90);  // Multi-line payload.
  ASSERT_TRUE(stage_->Write(400, final_data).ok());
  const auto post = nvm_->Snapshot();
  const uint64_t total = NvmStage::RecordBytes(final_data.size(), line);

  uint32_t torn_cuts = 0;
  for (uint64_t cut = 0; cut <= total; cut += line) {
    auto torn = pre;
    std::memcpy(torn.data() + record_offset, post.data() + record_offset, cut);
    auto [nvm2, stage2] = Reopen(std::move(torn));
    auto info = stage2->Recover();
    ASSERT_TRUE(info.ok()) << "cut " << cut;
    if (cut == total) {
      // Fully persisted: the final record replays.
      EXPECT_EQ(info->data_records, kPriorRecords + 1) << "cut " << cut;
      EXPECT_FALSE(info->torn_tail_dropped) << "cut " << cut;
      std::vector<std::byte> out(final_data.size());
      ASSERT_TRUE(stage2->Read(400, out).ok());
      EXPECT_EQ(out, final_data) << "cut " << cut;
    } else {
      // Torn: exactly the final record is dropped — all-or-nothing, never a partial replay.
      EXPECT_EQ(info->data_records, kPriorRecords) << "cut " << cut;
      if (cut > 0) {
        // The header line persisted but the payload is incomplete: the CRC must catch it.
        EXPECT_TRUE(info->torn_tail_dropped) << "cut " << cut;
        ++torn_cuts;
      }
    }
    // Every earlier acknowledged record survives every cut.
    for (uint32_t i = 0; i < kPriorRecords; ++i) {
      std::vector<std::byte> out(kSectorBytes);
      ASSERT_TRUE(stage2->Read(i * 8, out).ok());
      EXPECT_EQ(out, Pattern(kSectorBytes, 80 + i)) << "cut " << cut << " record " << i;
    }
  }
  EXPECT_GT(torn_cuts, 0u);
}

// Single-bit payload corruption anywhere in any record is caught by the per-record CRC: the
// damaged record and everything after it are dropped, everything before survives.
TEST_F(NvmStageTest, PayloadCorruptionDropsTheDamagedRecordAndItsSuffix) {
  constexpr uint32_t kRecords = 4;
  for (uint32_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(stage_->Write(i * 8, Pattern(kSectorBytes, 100 + i)).ok());
  }
  const uint64_t record_total = NvmStage::RecordBytes(kSectorBytes, nvm_params_.cache_line_bytes);
  common::Rng rng(0x7a11);
  for (uint32_t victim = 0; victim < kRecords; ++victim) {
    auto image = nvm_->Snapshot();
    const uint64_t payload_off = NvmStage::kSuperblockBytes + victim * record_total +
                                 NvmStage::kHeaderBytes + rng.Next() % kSectorBytes;
    image[payload_off] ^= std::byte{0x40};
    auto [nvm2, stage2] = Reopen(std::move(image));
    auto info = stage2->Recover();
    ASSERT_TRUE(info.ok()) << "victim " << victim;
    EXPECT_EQ(info->data_records, victim) << "victim " << victim;
    EXPECT_TRUE(info->torn_tail_dropped) << "victim " << victim;
    for (uint32_t i = 0; i < victim; ++i) {
      std::vector<std::byte> out(kSectorBytes);
      ASSERT_TRUE(stage2->Read(i * 8, out).ok());
      EXPECT_EQ(out, Pattern(kSectorBytes, 100 + i)) << "victim " << victim << " record " << i;
    }
  }
}

}  // namespace
}  // namespace vlog::core
