# Failure-path check for trace_dump's flag parsing: an unknown flag or a malformed numeric
# value must exit nonzero (with a usage message), never silently run a degenerate workload.
#
# Invoked by ctest as:
#   cmake -DTOOL=<trace_dump> -DFLAGS="--rounds=abc" -P this_file
separate_arguments(flag_list UNIX_COMMAND "${FLAGS}")
execute_process(
  COMMAND ${TOOL} ${flag_list}
  OUTPUT_QUIET
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "trace_dump ${FLAGS} exited 0; malformed flags must fail")
endif()
if(NOT err MATCHES "usage|trace_dump")
  message(FATAL_ERROR "trace_dump ${FLAGS} failed without a usage/diagnostic message: ${err}")
endif()
