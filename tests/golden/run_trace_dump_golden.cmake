# Golden-output check for `trace_dump --json`: runs the canned cached workload and requires the
# vlog-trace/1 dump to be byte-identical to the checked-in golden file. Catches accidental schema
# or determinism regressions (new fields, reordered keys, nondeterministic ids/timestamps).
#
# Invoked by ctest as:
#   cmake -DTOOL=<trace_dump> -DGOLDEN=<golden.json> -DOUT=<scratch.json> -P this_file
#
# Regenerate the golden after an intentional schema change with:
#   build/tools/trace_dump --depth=2 --rounds=2 --cache=256 --json > tests/golden/trace_dump_cached.json
execute_process(
  COMMAND ${TOOL} --depth=2 --rounds=2 --cache=256 --json
  OUTPUT_FILE ${OUT}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace_dump exited with ${rc}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "trace_dump --json output differs from golden ${GOLDEN}; "
                      "if the schema change is intentional, regenerate the golden file")
endif()
