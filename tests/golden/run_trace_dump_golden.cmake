# Golden-output check for `trace_dump --json`: runs a canned workload (shape given by FLAGS)
# and requires the vlog-trace/1 dump to be byte-identical to the checked-in golden file.
# Catches accidental schema or determinism regressions (new fields, reordered keys,
# nondeterministic ids/timestamps).
#
# Invoked by ctest as:
#   cmake -DTOOL=<trace_dump> -DFLAGS="--depth=2 ..." -DGOLDEN=<golden.json> -DOUT=<scratch.json>
#         -P this_file
#
# Regenerate a golden after an intentional schema change with:
#   build/tools/trace_dump <flags> --json > tests/golden/<name>.json
separate_arguments(flag_list UNIX_COMMAND "${FLAGS}")
execute_process(
  COMMAND ${TOOL} ${flag_list} --json
  OUTPUT_FILE ${OUT}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace_dump exited with ${rc}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "trace_dump --json output differs from golden ${GOLDEN}; "
                      "if the schema change is intentional, regenerate the golden file")
endif()
