#include <gtest/gtest.h>

#include "src/core/free_space.h"
#include "src/simdisk/disk_params.h"

namespace vlog::core {
namespace {

simdisk::DiskGeometry SmallGeom() {
  // 4 cylinders x 2 tracks x 32 sectors; 4 blocks of 8 sectors per track.
  return simdisk::DiskGeometry{.cylinders = 4, .tracks_per_cylinder = 2, .sectors_per_track = 32,
                               .sector_bytes = 512};
}

TEST(FreeSpace, InitialStateAllFree) {
  FreeSpaceMap space(SmallGeom(), 8);
  EXPECT_EQ(space.blocks_per_track(), 4u);
  EXPECT_EQ(space.total_blocks(), 32u);
  EXPECT_EQ(space.free_blocks(), 32u);
  EXPECT_EQ(space.live_blocks(), 0u);
  EXPECT_TRUE(space.TrackEmpty(0));
  EXPECT_DOUBLE_EQ(space.Utilization(), 0.0);
}

TEST(FreeSpace, LbaBlockConversions) {
  FreeSpaceMap space(SmallGeom(), 8);
  EXPECT_EQ(space.BlockToLba(5), 40u);
  EXPECT_EQ(space.LbaToBlock(47), 5u);
  EXPECT_EQ(space.TrackOfBlock(5), 1u);
}

TEST(FreeSpace, MarkAndFreeUpdateCounters) {
  FreeSpaceMap space(SmallGeom(), 8);
  space.MarkLive(3);
  EXPECT_EQ(space.state(3), BlockState::kLive);
  EXPECT_EQ(space.FreeInTrack(0), 3u);
  EXPECT_EQ(space.LiveInTrack(0), 1u);
  EXPECT_FALSE(space.TrackEmpty(0));
  space.Free(3);
  EXPECT_EQ(space.state(3), BlockState::kFree);
  EXPECT_TRUE(space.TrackEmpty(0));
}

TEST(FreeSpace, SystemBlocksExcludedFromUtilization) {
  FreeSpaceMap space(SmallGeom(), 8);
  space.MarkSystem(0);
  EXPECT_TRUE(space.TrackHasSystem(0));
  EXPECT_FALSE(space.TrackEmpty(0));
  // 31 usable blocks; one live = 1/31.
  space.MarkLive(1);
  EXPECT_NEAR(space.Utilization(), 1.0 / 31.0, 1e-12);
}

TEST(FreeSpace, NearestFreeScansCircularly) {
  FreeSpaceMap space(SmallGeom(), 8);
  space.MarkLive(0);
  space.MarkLive(1);
  uint32_t skip = 0;
  // From sector 0: blocks 0,1 occupied; block 2 (sector 16) is nearest.
  auto block = space.NearestFreeInTrack(0, 0, &skip);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(*block, 2u);
  EXPECT_EQ(skip, 16u);
  // From sector 30 (inside block 3): block 3's start already passed; wraps to... block 3 starts
  // at 24, from 30 the next aligned start is block 0 (occupied), 1 (occupied), 2.
  block = space.NearestFreeInTrack(0, 30, &skip);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(*block, 2u);
  EXPECT_EQ(skip, (16 + 32 - 30) % 32u);
}

TEST(FreeSpace, NearestFreeExactBoundary) {
  FreeSpaceMap space(SmallGeom(), 8);
  uint32_t skip = 9;
  auto block = space.NearestFreeInTrack(0, 8, &skip);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(*block, 1u);  // Sector 8 is exactly block 1's start.
  EXPECT_EQ(skip, 0u);
}

TEST(FreeSpace, NearestFreeFullTrack) {
  FreeSpaceMap space(SmallGeom(), 8);
  for (uint32_t b = 0; b < 4; ++b) {
    space.MarkLive(b);
  }
  EXPECT_FALSE(space.NearestFreeInTrack(0, 0, nullptr).has_value());
  // Other tracks unaffected.
  EXPECT_TRUE(space.NearestFreeInTrack(1, 0, nullptr).has_value());
}

TEST(FreeSpace, SecondTrackIndexing) {
  FreeSpaceMap space(SmallGeom(), 8);
  space.MarkLive(4);  // First block of track 1.
  EXPECT_EQ(space.LiveInTrack(1), 1u);
  EXPECT_EQ(space.LiveInTrack(0), 0u);
  uint32_t skip = 0;
  auto block = space.NearestFreeInTrack(1, 0, &skip);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(*block, 5u);
  EXPECT_EQ(skip, 8u);
}

}  // namespace
}  // namespace vlog::core
