#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/core/eager_allocator.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::core {
namespace {

class EagerAllocatorTest : public ::testing::Test {
 protected:
  EagerAllocatorTest()
      : disk_(simdisk::Truncated(simdisk::Hp97560(), 8), &clock_),
        space_(disk_.geometry(), 8) {}

  EagerAllocator MakeGreedy() {
    return EagerAllocator(&disk_, &space_, AllocatorConfig{.fill_to_threshold = false});
  }
  EagerAllocator MakeFill(double threshold = 0.25) {
    return EagerAllocator(&disk_, &space_,
                          AllocatorConfig{.fill_to_threshold = true,
                                          .track_switch_threshold = threshold});
  }

  // Writes one block at the allocated location, as the VLD would.
  void WriteTo(uint32_t block) {
    std::vector<std::byte> data(8 * 512);
    ASSERT_TRUE(disk_.InternalWrite(space_.BlockToLba(block), data).ok());
  }

  common::Clock clock_;
  simdisk::SimDisk disk_;
  FreeSpaceMap space_;
};

TEST_F(EagerAllocatorTest, AllocatesFreeBlocksAndMarksThem) {
  EagerAllocator alloc = MakeGreedy();
  const auto block = alloc.Allocate();
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(space_.state(*block), BlockState::kLive);
  EXPECT_EQ(alloc.stats().allocations, 1u);
}

TEST_F(EagerAllocatorTest, PrefersCurrentTrack) {
  EagerAllocator alloc = MakeGreedy();
  // Arm starts at cylinder 0 head 0 with everything free: allocation stays on track 0.
  for (int i = 0; i < static_cast<int>(space_.blocks_per_track()); ++i) {
    const auto block = alloc.Allocate();
    ASSERT_TRUE(block.has_value());
    EXPECT_EQ(space_.TrackOfBlock(*block), 0u) << i;
    WriteTo(*block);
  }
  EXPECT_EQ(alloc.stats().same_track, space_.blocks_per_track());
}

TEST_F(EagerAllocatorTest, SwitchesHeadWhenTrackFull) {
  EagerAllocator alloc = MakeGreedy();
  for (uint32_t i = 0; i < space_.blocks_per_track(); ++i) {
    WriteTo(*alloc.Allocate());
  }
  const auto block = alloc.Allocate();
  ASSERT_TRUE(block.has_value());
  // Still cylinder 0, different surface.
  const auto phys = disk_.geometry().ToPhys(space_.BlockToLba(*block));
  EXPECT_EQ(phys.cylinder, 0u);
  EXPECT_NE(phys.head, 0u);
  EXPECT_GE(alloc.stats().same_cylinder, 1u);
}

TEST_F(EagerAllocatorTest, SeeksWhenCylinderFull) {
  EagerAllocator alloc = MakeGreedy();
  const uint64_t per_cyl = space_.blocks_per_track() * disk_.geometry().tracks_per_cylinder;
  for (uint64_t i = 0; i < per_cyl; ++i) {
    WriteTo(*alloc.Allocate());
  }
  const auto block = alloc.Allocate();
  ASSERT_TRUE(block.has_value());
  EXPECT_GT(space_.TrackOfBlock(*block), disk_.geometry().tracks_per_cylinder - 1);
  EXPECT_GE(alloc.stats().cylinder_seeks, 1u);
}

TEST_F(EagerAllocatorTest, ReturnsNulloptWhenFull) {
  EagerAllocator alloc = MakeGreedy();
  while (space_.free_blocks() > 0) {
    ASSERT_TRUE(alloc.Allocate().has_value());
  }
  EXPECT_FALSE(alloc.Allocate().has_value());
}

TEST_F(EagerAllocatorTest, NeverReturnsOccupiedBlock) {
  EagerAllocator alloc = MakeGreedy();
  std::vector<bool> seen(space_.total_blocks(), false);
  while (space_.free_blocks() > 0) {
    const auto block = alloc.Allocate();
    ASSERT_TRUE(block.has_value());
    EXPECT_FALSE(seen[*block]);
    seen[*block] = true;
  }
}

TEST_F(EagerAllocatorTest, RespectsExcludedTrack) {
  EagerAllocator alloc = MakeGreedy();
  alloc.SetExcludedTrack(0);
  for (int i = 0; i < 20; ++i) {
    const auto block = alloc.Allocate();
    ASSERT_TRUE(block.has_value());
    EXPECT_NE(space_.TrackOfBlock(*block), 0u);
  }
}

TEST_F(EagerAllocatorTest, FillModeReservesThresholdPerTrack) {
  EagerAllocator alloc = MakeFill(0.25);  // Reserve 25% of 9 blocks -> 2 blocks stay free.
  std::vector<uint32_t> track_fill(space_.total_tracks(), 0);
  for (int i = 0; i < 40; ++i) {
    const auto block = alloc.Allocate();
    ASSERT_TRUE(block.has_value());
    ++track_fill[space_.TrackOfBlock(*block)];
    WriteTo(*block);
  }
  for (uint64_t t = 0; t < space_.total_tracks(); ++t) {
    EXPECT_LE(track_fill[t], space_.blocks_per_track() - 2) << "track " << t;
  }
  EXPECT_GE(alloc.stats().fill_track_switches, 40u / (space_.blocks_per_track() - 2));
}

TEST_F(EagerAllocatorTest, FillModeFallsBackToGreedyWithoutEmptyTracks) {
  EagerAllocator alloc = MakeFill(0.25);
  // Occupy one block in every track so no track is empty.
  for (uint64_t t = 0; t < space_.total_tracks(); ++t) {
    space_.MarkLive(static_cast<uint32_t>(t * space_.blocks_per_track()));
  }
  const auto block = alloc.Allocate();
  ASSERT_TRUE(block.has_value());
  EXPECT_GE(alloc.stats().greedy_fallbacks, 1u);
}

TEST_F(EagerAllocatorTest, NotedEmptyTracksAreUsedFirst) {
  EagerAllocator alloc = MakeFill(0.25);
  alloc.NoteEmptyTrack(5);
  const auto block = alloc.Allocate();
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(space_.TrackOfBlock(*block), 5u);
}

TEST_F(EagerAllocatorTest, EstimateReflectsRotationalProximity) {
  EagerAllocator alloc = MakeGreedy();
  // Consecutive allocations on an empty track should have sub-rotation estimated cost.
  WriteTo(*alloc.Allocate());
  const auto before = alloc.stats().estimated_locate;
  WriteTo(*alloc.Allocate());
  const auto delta = alloc.stats().estimated_locate - before;
  EXPECT_LT(delta, disk_.params().RotationPeriod());
}

}  // namespace
}  // namespace vlog::core
