#include <gtest/gtest.h>

#include "src/workload/benchmarks.h"
#include "src/workload/platform.h"

namespace vlog::workload {
namespace {

TEST(PlatformConfig, NamesAreDescriptive) {
  PlatformConfig config;
  config.fs_kind = FsKind::kUfs;
  config.disk_kind = DiskKind::kVld;
  config.disk_model = DiskModel::kHp97560;
  config.host_kind = HostKind::kUltra170;
  EXPECT_EQ(config.Name(), "UFS/VLD (HP97560, Ultra-170)");
  config.fs_kind = FsKind::kLfs;
  config.disk_kind = DiskKind::kRegular;
  config.disk_model = DiskModel::kSt19101;
  config.host_kind = HostKind::kSparc10;
  EXPECT_EQ(config.Name(), "LFS/regular (ST19101, SPARC-10)");
}

TEST(Platform, DefaultTruncationMatchesPaper) {
  // ~24 MB for both disk models (36 HP cylinders / 11 Seagate cylinders).
  for (const DiskModel model : {DiskModel::kHp97560, DiskModel::kSt19101}) {
    PlatformConfig config;
    config.disk_model = model;
    Platform platform(config);
    const double mb =
        static_cast<double>(platform.raw_disk().geometry().CapacityBytes()) / (1 << 20);
    EXPECT_NEAR(mb, 23.5, 1.5) << static_cast<int>(model);
  }
}

TEST(Platform, AssemblesAllFourConfigurations) {
  for (const FsKind fs : {FsKind::kUfs, FsKind::kLfs}) {
    for (const DiskKind disk : {DiskKind::kRegular, DiskKind::kVld}) {
      PlatformConfig config;
      config.fs_kind = fs;
      config.disk_kind = disk;
      config.cylinders = 4;
      Platform platform(config);
      ASSERT_TRUE(platform.Format().ok());
      EXPECT_EQ(platform.vld() != nullptr, disk == DiskKind::kVld);
      EXPECT_EQ(platform.ufs() != nullptr, fs == FsKind::kUfs);
      EXPECT_EQ(platform.log_disk() != nullptr, fs == FsKind::kLfs);
      ASSERT_TRUE(platform.fs().Create("/x").ok());
      EXPECT_TRUE(platform.fs().Stat("/x").ok());
    }
  }
}

TEST(Platform, RunIdleAdvancesClockExactly) {
  PlatformConfig config;
  config.cylinders = 4;
  Platform platform(config);
  ASSERT_TRUE(platform.Format().ok());
  const common::Time before = platform.clock().Now();
  platform.RunIdle(common::Milliseconds(250));
  EXPECT_EQ(platform.clock().Now(), before + common::Milliseconds(250));
}

TEST(Platform, DeviceBytesSmallerOnVld) {
  PlatformConfig regular;
  regular.cylinders = 4;
  PlatformConfig vld = regular;
  vld.disk_kind = DiskKind::kVld;
  Platform a(regular), b(vld);
  ASSERT_TRUE(a.Format().ok());
  ASSERT_TRUE(b.Format().ok());
  EXPECT_GT(a.DeviceBytes(), b.DeviceBytes());  // Map + slack overhead.
  EXPECT_GT(b.DeviceBytes(), a.DeviceBytes() * 9 / 10);
}

TEST(Benchmarks, SmallFileRunsAndOrdersPhases) {
  PlatformConfig config;
  config.cylinders = 6;
  config.host_kind = HostKind::kZeroCost;
  Platform platform(config);
  ASSERT_TRUE(platform.Format().ok());
  auto result = RunSmallFile(platform, /*files=*/100, /*file_bytes=*/1024);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->create, 0);
  EXPECT_GT(result->read, 0);
  EXPECT_GT(result->remove, 0);
  // Synchronous metadata makes create/delete far costlier than cached reads on UFS.
  EXPECT_GT(result->create, result->read);
}

TEST(Benchmarks, LargeFileBandwidthSane) {
  PlatformConfig config;
  config.cylinders = 6;
  Platform platform(config);
  ASSERT_TRUE(platform.Format().ok());
  auto result = RunLargeFile(platform, /*file_bytes=*/2 << 20, /*include_sync_phase=*/true);
  ASSERT_TRUE(result.ok());
  // Every phase finishes in positive time, and sync random writes are the slowest of all.
  EXPECT_GT(result->rand_write_sync, result->seq_write);
  EXPECT_GT(result->rand_write_sync, result->rand_write_async);
  EXPECT_GT(result->seq_read, 0);
}

TEST(Benchmarks, RandomUpdatesFasterOnVld) {
  auto run = [](DiskKind kind) {
    PlatformConfig config;
    config.cylinders = 6;
    config.disk_kind = kind;
    Platform platform(config);
    EXPECT_TRUE(platform.Format().ok());
    auto result = RunRandomUpdates(platform, /*file_bytes=*/4 << 20, /*updates=*/100,
                                   /*warmup=*/20);
    EXPECT_TRUE(result.ok());
    return result->avg_latency;
  };
  EXPECT_GT(run(DiskKind::kRegular), 2 * run(DiskKind::kVld));
}

TEST(Benchmarks, BurstIdleImprovesWithIdleOnVld) {
  auto run = [](double idle_s) {
    PlatformConfig config;
    config.cylinders = 6;
    config.disk_kind = DiskKind::kVld;
    config.vld.target_empty_tracks = 64;
    Platform platform(config);
    EXPECT_TRUE(platform.Format().ok());
    auto latency = RunBurstIdle(platform, /*file_bytes=*/7 << 20, /*burst_bytes=*/128 << 10,
                                common::Seconds(idle_s), /*rounds=*/12, /*warmup_rounds=*/4);
    EXPECT_TRUE(latency.ok());
    return *latency;
  };
  EXPECT_GT(run(0.0), run(0.5));
}

TEST(Benchmarks, UpdateUtilizationReported) {
  PlatformConfig config;
  config.cylinders = 6;
  Platform platform(config);
  ASSERT_TRUE(platform.Format().ok());
  auto result = RunRandomUpdates(platform, /*file_bytes=*/3 << 20, /*updates=*/50,
                                 /*warmup=*/0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->fs_utilization, 0.2);
  EXPECT_LT(result->fs_utilization, 0.9);
}

}  // namespace
}  // namespace vlog::workload
