#include "src/array/vld_array.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/core/vld.h"
#include "src/obs/trace.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::array {
namespace {

constexpr size_t kBlockBytes = 4096;

std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 131 + i * 7));
  }
  return v;
}

// One member's full stack: its own clock, disk, and VLD. Heap-held so the disk's pointer to
// the clock stays valid however the collection grows.
struct Stack {
  common::Clock clock;
  std::unique_ptr<simdisk::SimDisk> disk;
  std::unique_ptr<core::Vld> vld;
};

std::vector<std::unique_ptr<Stack>> MakeStacks(uint32_t n, core::VldConfig config = {}) {
  std::vector<std::unique_ptr<Stack>> stacks;
  for (uint32_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Stack>();
    s->disk = std::make_unique<simdisk::SimDisk>(
        simdisk::Truncated(simdisk::SeagateSt19101(), 3), &s->clock);
    s->vld = std::make_unique<core::Vld>(s->disk.get(), config);
    stacks.push_back(std::move(s));
  }
  return stacks;
}

std::vector<core::Vld*> Members(const std::vector<std::unique_ptr<Stack>>& stacks) {
  std::vector<core::Vld*> members;
  for (const auto& s : stacks) {
    members.push_back(s->vld.get());
  }
  return members;
}

TEST(VldArrayTest, StripedCapacityIsWholeChunksTimesMembers) {
  auto stacks = MakeStacks(4);
  VldArray array(Members(stacks), {.mode = ArrayMode::kStriped, .stripe_blocks = 8});
  ASSERT_TRUE(array.Format().ok());
  EXPECT_EQ(array.SectorCount() % array.chunk_sectors(), 0u);
  EXPECT_EQ((array.SectorCount() / array.chunk_sectors()) % 4, 0u);
  // Rounding down to whole chunks loses less than one chunk per member.
  EXPECT_GT(array.SectorCount(),
            4 * (stacks[0]->vld->SectorCount() - array.chunk_sectors()));
  EXPECT_LE(array.SectorCount(), 4 * stacks[0]->vld->SectorCount());
}

TEST(VldArrayTest, StripedTranslationDealsChunksRoundRobin) {
  auto stacks = MakeStacks(2);
  VldArray array(Members(stacks), {.mode = ArrayMode::kStriped, .stripe_blocks = 1});
  ASSERT_TRUE(array.Format().ok());
  const uint64_t chunk = array.chunk_sectors();
  // Write four distinct chunks at array chunks 0..3; chunk c must land on member c % 2 at
  // member chunk c / 2.
  for (uint32_t c = 0; c < 4; ++c) {
    ASSERT_TRUE(array.Write(c * chunk, Pattern(chunk * 512, c + 1)).ok());
  }
  for (uint32_t c = 0; c < 4; ++c) {
    std::vector<std::byte> member_data(chunk * 512);
    ASSERT_TRUE(stacks[c % 2]->vld->Read((c / 2) * chunk, member_data).ok());
    EXPECT_EQ(member_data, Pattern(chunk * 512, c + 1)) << "chunk " << c;
  }
  // And a single read spanning all four chunks reassembles them in order.
  std::vector<std::byte> all(4 * chunk * 512);
  ASSERT_TRUE(array.Read(0, all).ok());
  for (uint32_t c = 0; c < 4; ++c) {
    const auto want = Pattern(chunk * 512, c + 1);
    EXPECT_EQ(0, std::memcmp(all.data() + c * chunk * 512, want.data(), chunk * 512));
  }
}

TEST(VldArrayTest, StripedFanOutCostsMaxNotSumOfMembers) {
  auto stacks = MakeStacks(2);
  VldArray array(Members(stacks), {.mode = ArrayMode::kStriped, .stripe_blocks = 8});
  ASSERT_TRUE(array.Format().ok());
  const common::Time start = array.now();
  // One extent covering a full stripe row: both members do real work.
  ASSERT_TRUE(array.Write(0, Pattern(2 * array.chunk_sectors() * 512, 9)).ok());
  const common::Time m0 = stacks[0]->clock.Now();
  const common::Time m1 = stacks[1]->clock.Now();
  EXPECT_GT(m0, start);
  EXPECT_GT(m1, start);
  // The cross-disk barrier: array time is the slowest member, not the serialized sum.
  EXPECT_EQ(array.now(), std::max(m0, m1));
  EXPECT_LT(array.now(), (m0 - start) + (m1 - start) + start);
}

// The N = 1 identity: a single-member striped array must be bit-, clock-, and
// breakdown-identical to its bare member VLD — the array layer dissolves completely. Both
// stacks run the same mixed sync workload with a tracer attached; the traces (which embed
// every event time and the full per-span breakdowns) must match byte for byte.
TEST(VldArrayTest, SingleMemberIdentityOnSyncPath) {
  auto run = [](bool through_array) {
    auto stacks = MakeStacks(1);
    obs::TraceRecorder tracer(&stacks[0]->clock);
    stacks[0]->disk->set_tracer(&tracer);
    VldArray array(Members(stacks), {.mode = ArrayMode::kStriped, .stripe_blocks = 8});
    simdisk::BlockDevice& dev =
        through_array ? static_cast<simdisk::BlockDevice&>(array) : *stacks[0]->vld;
    EXPECT_TRUE((through_array ? array.Format() : stacks[0]->vld->Format()).ok());
    common::Rng rng(7);
    const uint64_t sectors = array.SectorCount();
    for (int i = 0; i < 40; ++i) {
      const uint64_t lba = rng.Below(sectors - 64);
      if (rng.Chance(0.3)) {
        std::vector<std::byte> out((1 + rng.Below(8)) * 512);
        EXPECT_TRUE(dev.Read(lba, out).ok());
      } else {
        EXPECT_TRUE(dev.Write(lba, Pattern((1 + rng.Below(8)) * 512, i)).ok());
      }
    }
    return std::make_pair(stacks[0]->clock.Now(), tracer.TraceJson());
  };
  const auto [bare_time, bare_trace] = run(false);
  const auto [array_time, array_trace] = run(true);
  EXPECT_EQ(array_time, bare_time);
  EXPECT_EQ(array_trace, bare_trace);
}

TEST(VldArrayTest, SingleMemberIdentityOnQueuedPath) {
  auto run = [](bool through_array) {
    auto stacks = MakeStacks(1, {.queue_depth = 8});
    EXPECT_TRUE(stacks[0]->vld->Format().ok());
    VldArray array(Members(stacks), {.mode = ArrayMode::kStriped, .stripe_blocks = 8});
    common::Rng rng(11);
    std::vector<std::pair<common::Time, std::vector<std::byte>>> acks;
    for (int round = 0; round < 6; ++round) {
      for (int k = 0; k < 6; ++k) {
        const uint64_t lba = rng.Below(array.SectorCount() - 64);
        if (rng.Chance(0.4)) {
          EXPECT_TRUE((through_array ? array.SubmitRead(lba, 8).ok()
                                     : stacks[0]->vld->SubmitRead(lba, 8).ok()));
        } else {
          const auto data = Pattern(kBlockBytes, static_cast<uint32_t>(round * 8 + k));
          EXPECT_TRUE((through_array ? array.SubmitWrite(lba, data).ok()
                                     : stacks[0]->vld->SubmitWrite(lba, data).ok()));
        }
      }
      if (through_array) {
        auto done = array.FlushQueue();
        EXPECT_TRUE(done.ok());
        for (auto& c : *done) {
          acks.emplace_back(c.complete_time, std::move(c.data));
        }
      } else {
        auto done = stacks[0]->vld->FlushQueue();
        EXPECT_TRUE(done.ok());
        for (auto& c : *done) {
          acks.emplace_back(c.complete_time, std::move(c.data));
        }
      }
    }
    return std::make_pair(stacks[0]->clock.Now(), acks);
  };
  const auto [bare_time, bare_acks] = run(false);
  const auto [array_time, array_acks] = run(true);
  EXPECT_EQ(array_time, bare_time);
  ASSERT_EQ(array_acks.size(), bare_acks.size());
  for (size_t i = 0; i < bare_acks.size(); ++i) {
    EXPECT_EQ(array_acks[i].first, bare_acks[i].first) << "completion " << i;
    EXPECT_EQ(array_acks[i].second, bare_acks[i].second) << "completion " << i;
  }
}

// Cross-disk group commit: a queue's worth of multi-stripe writes costs one packed commit per
// member, not one commit per block.
TEST(VldArrayTest, QueuedBatchCommitsOncePerMember) {
  auto stacks = MakeStacks(2, {.queue_depth = 16});
  VldArray array(Members(stacks), {.mode = ArrayMode::kStriped, .stripe_blocks = 1});
  ASSERT_TRUE(array.Format().ok());
  const uint64_t chunk = array.chunk_sectors();
  // Eight writes, each spanning two chunks (both members).
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(array.SubmitWrite(i * 2 * chunk, Pattern(2 * chunk * 512, i)).ok());
  }
  auto done = array.FlushQueue();
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 8u);
  for (uint32_t m = 0; m < 2; ++m) {
    const core::VldStats& st = stacks[m]->vld->stats();
    EXPECT_EQ(st.group_commits, 1u) << "member " << m;
    EXPECT_EQ(st.queued_writes, 8u) << "member " << m;
  }
  // Every write acknowledges at the barrier: no earlier than either member's finish time for
  // its runs, and the data reads back.
  for (uint32_t i = 0; i < 8; ++i) {
    std::vector<std::byte> out(2 * chunk * 512);
    ASSERT_TRUE(array.Read(i * 2 * chunk, out).ok());
    EXPECT_EQ(out, Pattern(2 * chunk * 512, i)) << "write " << i;
  }
}

TEST(VldArrayTest, MirroredWritesReachEveryReplica) {
  auto stacks = MakeStacks(2);
  VldArray array(Members(stacks), {.mode = ArrayMode::kMirrored});
  ASSERT_TRUE(array.Format().ok());
  const auto data = Pattern(kBlockBytes, 3);
  ASSERT_TRUE(array.Write(16, data).ok());
  // The acknowledgement is the cross-disk barrier: both replicas had finished by array time.
  EXPECT_EQ(array.now(), std::max(stacks[0]->clock.Now(), stacks[1]->clock.Now()));
  for (uint32_t m = 0; m < 2; ++m) {
    std::vector<std::byte> out(kBlockBytes);
    ASSERT_TRUE(stacks[m]->vld->Read(16, out).ok());
    EXPECT_EQ(out, data) << "replica " << m;
  }
}

TEST(VldArrayTest, MirroredReadsRoundRobinAcrossHealthyReplicas) {
  auto stacks = MakeStacks(2);
  VldArray array(Members(stacks), {.mode = ArrayMode::kMirrored});
  ASSERT_TRUE(array.Format().ok());
  ASSERT_TRUE(array.Write(0, Pattern(kBlockBytes, 1)).ok());
  std::vector<std::byte> out(kBlockBytes);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(array.Read(0, out).ok());
  }
  // Reads split evenly: 5 each on top of whatever Format/Write issued.
  EXPECT_EQ(stacks[0]->vld->stats().host_reads, stacks[1]->vld->stats().host_reads);
}

TEST(VldArrayTest, MirroredDegradedReadsServeFromSurvivor) {
  auto stacks = MakeStacks(2);
  VldArray array(Members(stacks), {.mode = ArrayMode::kMirrored});
  ASSERT_TRUE(array.Format().ok());
  const auto v1 = Pattern(kBlockBytes, 4);
  ASSERT_TRUE(array.Write(8, v1).ok());
  ASSERT_TRUE(array.MarkFailed(0).ok());
  EXPECT_EQ(array.healthy_members(), 1u);
  // Degraded reads keep returning the data; degraded writes keep working on the survivor.
  std::vector<std::byte> out(kBlockBytes);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(array.Read(8, out).ok());
    EXPECT_EQ(out, v1);
  }
  const auto v2 = Pattern(kBlockBytes, 5);
  ASSERT_TRUE(array.Write(8, v2).ok());
  ASSERT_TRUE(array.Read(8, out).ok());
  EXPECT_EQ(out, v2);
  const uint64_t survivor_reads = stacks[1]->vld->stats().host_reads;
  EXPECT_GE(survivor_reads, 5u) << "all degraded reads must come from the survivor";
  // A fully failed mirror refuses I/O.
  auto st = array.MarkFailed(1);
  EXPECT_FALSE(st.ok());
}

TEST(VldArrayTest, MirroredRecoverResyncsLaggingReplica) {
  auto stacks = MakeStacks(2);
  VldArray array(Members(stacks), {.mode = ArrayMode::kMirrored});
  ASSERT_TRUE(array.Format().ok());
  const auto v1 = Pattern(kBlockBytes, 6);
  ASSERT_TRUE(array.Write(0, v1).ok());
  // Member 1 "crashes": it misses the next write, which lands only on member 0.
  ASSERT_TRUE(array.MarkFailed(1).ok());
  const auto v2 = Pattern(kBlockBytes, 7);
  ASSERT_TRUE(array.Write(0, v2).ok());
  ASSERT_TRUE(array.Write(8, v2).ok());  // A block replica 1 never saw at all.
  // The member comes back stale; Recover stitches: member 0 (lowest healthy) is authoritative
  // and the replica is rewritten block by block.
  ASSERT_TRUE(array.MarkHealthy(1).ok());
  auto info = array.Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->authoritative, 0u);
  EXPECT_EQ(info->resynced_blocks, 2u);
  EXPECT_EQ(info->trimmed_blocks, 0u);
  // Every subsequent read — from either replica — sees the new data.
  ASSERT_TRUE(array.MarkFailed(0).ok());  // Force reads onto the resynced replica.
  std::vector<std::byte> out(kBlockBytes);
  ASSERT_TRUE(array.Read(0, out).ok());
  EXPECT_EQ(out, v2);
  ASSERT_TRUE(array.Read(8, out).ok());
  EXPECT_EQ(out, v2);
}

TEST(VldArrayTest, MirroredRecoverTrimsBlocksTheAuthoritativeCopyLacks) {
  auto stacks = MakeStacks(2);
  VldArray array(Members(stacks), {.mode = ArrayMode::kMirrored});
  ASSERT_TRUE(array.Format().ok());
  // Replica 1 holds a block the authoritative member never committed (an in-flight write that
  // reached only one replica before a crash).
  ASSERT_TRUE(stacks[1]->vld->Write(24, Pattern(kBlockBytes, 8)).ok());
  auto info = array.Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->trimmed_blocks, 1u);
  EXPECT_EQ(stacks[1]->vld->logical_map()[3], core::kUnmappedBlock);
}

TEST(VldArrayTest, StripedRecoveryStitchesEveryMemberMap) {
  auto stacks = MakeStacks(2);
  core::VldConfig member_config;
  {
    VldArray array(Members(stacks), {.mode = ArrayMode::kStriped, .stripe_blocks = 2});
    ASSERT_TRUE(array.Format().ok());
    for (uint32_t i = 0; i < 12; ++i) {
      ASSERT_TRUE(array.Write(i * array.chunk_sectors(),
                              Pattern(array.chunk_sectors() * 512, i + 1)).ok());
    }
  }
  // Restart: fresh VLD instances over the same member media, stitched by a fresh array.
  for (auto& s : stacks) {
    s->vld = std::make_unique<core::Vld>(s->disk.get(), member_config);
  }
  VldArray array(Members(stacks), {.mode = ArrayMode::kStriped, .stripe_blocks = 2});
  auto info = array.Recover();
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->members.size(), 2u);
  for (const core::VldRecoveryInfo& r : info->members) {
    EXPECT_GT(r.mapped_blocks, 0u);
  }
  for (uint32_t i = 0; i < 12; ++i) {
    std::vector<std::byte> out(array.chunk_sectors() * 512);
    ASSERT_TRUE(array.Read(i * array.chunk_sectors(), out).ok());
    EXPECT_EQ(out, Pattern(array.chunk_sectors() * 512, i + 1)) << "chunk " << i;
  }
}

TEST(VldArrayTest, QueuedSpansCarryMemberDiskIndex) {
  auto stacks = MakeStacks(2, {.queue_depth = 8});
  // One shared recorder over both member disks; its clock is member 0's (display only).
  obs::TraceRecorder tracer(&stacks[0]->clock);
  stacks[0]->disk->set_tracer(&tracer);
  stacks[1]->disk->set_tracer(&tracer);
  VldArray array(Members(stacks), {.mode = ArrayMode::kStriped, .stripe_blocks = 1});
  ASSERT_TRUE(array.Format().ok());
  const uint64_t chunk = array.chunk_sectors();
  ASSERT_TRUE(array.SubmitWrite(0, Pattern(chunk * 512, 1)).ok());          // Member 0.
  ASSERT_TRUE(array.SubmitWrite(chunk, Pattern(chunk * 512, 2)).ok());      // Member 1.
  ASSERT_TRUE(array.FlushQueue().ok());
  bool saw[2] = {false, false};
  for (const auto& span : tracer.spans()) {
    if (span.layer == obs::Layer::kVld && span.kind == obs::SpanKind::kWrite) {
      ASSERT_LT(span.disk, 2u);
      saw[span.disk] = true;
    }
  }
  EXPECT_TRUE(saw[0] && saw[1]) << "per-member spans must be labeled with their disk index";
}

}  // namespace
}  // namespace vlog::array
