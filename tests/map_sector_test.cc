#include <gtest/gtest.h>

#include <cstddef>

#include "src/core/map_sector.h"

namespace vlog::core {
namespace {

MapSector Sample() {
  MapSector s;
  s.seq = 77;
  s.piece = 3;
  s.txn_id = 55;
  s.txn_index = 1;
  s.txn_total = 2;
  s.prev = DiskPtr{1234, 76};
  s.bypass = DiskPtr{888, 40};
  s.entries.resize(kEntriesPerSector);
  for (uint32_t i = 0; i < kEntriesPerSector; ++i) {
    s.entries[i] = i * 3 + 1;
  }
  return s;
}

TEST(MapSector, SerializedSizeIsOneSector) {
  EXPECT_EQ(Sample().Serialize().size(), kMapSectorBytes);
}

TEST(MapSector, RoundTrip) {
  const MapSector s = Sample();
  const auto raw = s.Serialize();
  auto parsed = MapSector::Parse(raw);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->seq, s.seq);
  EXPECT_EQ(parsed->piece, s.piece);
  EXPECT_EQ(parsed->txn_id, s.txn_id);
  EXPECT_EQ(parsed->txn_index, s.txn_index);
  EXPECT_EQ(parsed->txn_total, s.txn_total);
  EXPECT_EQ(parsed->prev, s.prev);
  EXPECT_EQ(parsed->bypass, s.bypass);
  EXPECT_EQ(parsed->entries, s.entries);
}

TEST(MapSector, PartialEntriesRoundTrip) {
  MapSector s = Sample();
  s.entries.resize(13);
  auto parsed = MapSector::Parse(s.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->entries.size(), 13u);
}

TEST(MapSector, EmptyEntriesRoundTrip) {
  MapSector s = Sample();
  s.entries.clear();
  auto parsed = MapSector::Parse(s.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->entries.empty());
}

TEST(MapSector, NullPointersRoundTrip) {
  MapSector s = Sample();
  s.prev = DiskPtr{};
  s.bypass = DiskPtr{};
  auto parsed = MapSector::Parse(s.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->prev.IsNull());
  EXPECT_TRUE(parsed->bypass.IsNull());
}

TEST(MapSector, RejectsCorruptedByte) {
  auto raw = Sample().Serialize();
  // Flip a bit in every region of the sector: header, entries, CRC.
  for (size_t offset : {size_t{9}, size_t{100}, raw.size() - 2}) {
    auto copy = raw;
    copy[offset] ^= std::byte{0x10};
    EXPECT_FALSE(MapSector::Parse(copy).ok()) << "offset " << offset;
  }
}

// The format epoch seeds the CRC: a sector written under one epoch must not parse under any
// other, which is what keeps stale-generation sectors out of a post-reformat scan.
TEST(MapSector, EpochSeedsCrc) {
  const MapSector s = Sample();
  const auto gen1 = s.Serialize(/*epoch=*/1);
  ASSERT_TRUE(MapSector::Parse(gen1, /*epoch=*/1).ok());
  EXPECT_FALSE(MapSector::Parse(gen1, /*epoch=*/2).ok());
  EXPECT_FALSE(MapSector::Parse(gen1, /*epoch=*/0).ok());
  // Epochs wider than 32 bits still change the seed (the fold keeps the high half).
  const auto high = s.Serialize(/*epoch=*/1ULL << 40);
  EXPECT_FALSE(MapSector::Parse(high, /*epoch=*/1).ok());
  ASSERT_TRUE(MapSector::Parse(high, /*epoch=*/1ULL << 40).ok());
}

TEST(MapSector, RejectsArbitraryData) {
  std::vector<std::byte> junk(kMapSectorBytes);
  for (size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<std::byte>(i * 7);
  }
  EXPECT_FALSE(MapSector::Parse(junk).ok());
  EXPECT_FALSE(MapSector::Parse(std::vector<std::byte>(kMapSectorBytes)).ok());  // All zeros.
}

TEST(MapSector, RejectsShortBuffer) {
  EXPECT_FALSE(MapSector::Parse(std::vector<std::byte>(100)).ok());
}

TEST(MapSector, RejectsOversizedEntryCount) {
  auto raw = Sample().Serialize();
  // Entry count lives at offset 20; force it beyond kEntriesPerSector and re-CRC via a fresh
  // serialize of a hacked struct instead (Parse checks count before trusting entries).
  MapSector s = Sample();
  s.entries.resize(kEntriesPerSector);  // Max allowed — fine.
  EXPECT_TRUE(MapSector::Parse(s.Serialize()).ok());
}

TEST(DiskPtr, NullSemantics) {
  DiskPtr p;
  EXPECT_TRUE(p.IsNull());
  p.lba = 5;
  EXPECT_FALSE(p.IsNull());
}

}  // namespace
}  // namespace vlog::core
