#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/common/time.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/geometry.h"
#include "src/simdisk/host_model.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::simdisk {
namespace {

using common::Clock;
using common::Duration;
using common::Milliseconds;

std::vector<std::byte> Pattern(size_t n, uint8_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed + i));
  }
  return v;
}

TEST(Geometry, LbaPhysRoundTrip) {
  const DiskGeometry g{.cylinders = 36, .tracks_per_cylinder = 19, .sectors_per_track = 72,
                       .sector_bytes = 512};
  EXPECT_EQ(g.TotalSectors(), 36ull * 19 * 72);
  for (Lba lba : {Lba{0}, Lba{71}, Lba{72}, Lba{1367}, Lba{1368}, g.TotalSectors() - 1}) {
    EXPECT_EQ(g.ToLba(g.ToPhys(lba)), lba);
  }
  const PhysAddr p = g.ToPhys(72 * 19);  // First sector of cylinder 1.
  EXPECT_EQ(p.cylinder, 1u);
  EXPECT_EQ(p.head, 0u);
  EXPECT_EQ(p.sector, 0u);
}

TEST(Geometry, TrackIndexing) {
  const DiskGeometry g{.cylinders = 4, .tracks_per_cylinder = 2, .sectors_per_track = 8,
                       .sector_bytes = 512};
  EXPECT_EQ(g.TrackOf(0), 0u);
  EXPECT_EQ(g.TrackOf(7), 0u);
  EXPECT_EQ(g.TrackOf(8), 1u);
  EXPECT_EQ(g.TrackStart(3), 24u);
  EXPECT_EQ(g.TotalTracks(), 8u);
}

TEST(DiskParams, Table1Values) {
  const DiskParams hp = Hp97560();
  EXPECT_EQ(hp.geometry.sectors_per_track, 72u);
  EXPECT_EQ(hp.geometry.tracks_per_cylinder, 19u);
  EXPECT_EQ(hp.head_switch, Milliseconds(2.5));
  EXPECT_EQ(hp.scsi_overhead, Milliseconds(2.3));
  EXPECT_NEAR(common::ToMilliseconds(hp.RotationPeriod()), 14.99, 0.01);
  // Table 1: minimum seek 3.6 ms.
  EXPECT_NEAR(common::ToMilliseconds(hp.seek.SeekTime(1)), 3.64, 0.01);

  const DiskParams st = SeagateSt19101();
  EXPECT_EQ(st.geometry.sectors_per_track, 256u);
  EXPECT_EQ(st.geometry.tracks_per_cylinder, 16u);
  EXPECT_NEAR(common::ToMilliseconds(st.RotationPeriod()), 6.0, 0.001);
  EXPECT_NEAR(common::ToMilliseconds(st.seek.SeekTime(1)), 0.5, 0.001);
  EXPECT_EQ(st.scsi_overhead, Milliseconds(0.1));
}

TEST(DiskParams, SeekCurveMonotone) {
  for (const DiskParams& p : {Hp97560(), SeagateSt19101()}) {
    Duration prev = 0;
    for (uint32_t d = 0; d < p.geometry.cylinders; d += 37) {
      const Duration t = p.seek.SeekTime(d);
      EXPECT_GE(t, prev) << p.name << " distance " << d;
      prev = t;
    }
  }
}

TEST(DiskParams, TruncatedKeepsTiming) {
  const DiskParams t = Truncated(Hp97560(), 36);
  EXPECT_EQ(t.geometry.cylinders, 36u);
  EXPECT_EQ(t.RotationPeriod(), Hp97560().RotationPeriod());
  // ~24 MB, matching the paper's kernel-memory ramdisk.
  EXPECT_NEAR(static_cast<double>(t.geometry.CapacityBytes()) / (1 << 20), 24.0, 1.5);
}

class SimDiskTest : public ::testing::Test {
 protected:
  SimDiskTest() : disk_(Truncated(Hp97560(), 36), &clock_) {}
  Clock clock_;
  SimDisk disk_;
};

TEST_F(SimDiskTest, WriteThenReadBack) {
  const auto data = Pattern(4096, 3);
  ASSERT_TRUE(disk_.Write(100, data).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(disk_.Read(100, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(SimDiskTest, RejectsBadRanges) {
  std::vector<std::byte> buf(100);  // Not a whole sector.
  EXPECT_FALSE(disk_.Read(0, buf).ok());
  std::vector<std::byte> sector(512);
  EXPECT_FALSE(disk_.Write(disk_.SectorCount(), sector).ok());
  std::vector<std::byte> two_sectors(1024);
  EXPECT_FALSE(disk_.Read(disk_.SectorCount() - 1, two_sectors).ok());
}

TEST_F(SimDiskTest, HostCommandChargesScsiOverhead) {
  const common::Time before = clock_.Now();
  std::vector<std::byte> sector(512);
  ASSERT_TRUE(disk_.Write(0, sector).ok());
  EXPECT_GE(clock_.Now() - before, disk_.params().scsi_overhead);
  EXPECT_EQ(disk_.stats().breakdown.scsi_overhead, disk_.params().scsi_overhead);
}

TEST_F(SimDiskTest, InternalOpSkipsScsiOverhead) {
  std::vector<std::byte> sector(512);
  ASSERT_TRUE(disk_.InternalWrite(0, sector).ok());
  EXPECT_EQ(disk_.stats().breakdown.scsi_overhead, 0);
}

TEST_F(SimDiskTest, SeekChargedWhenCylinderChanges) {
  std::vector<std::byte> sector(512);
  ASSERT_TRUE(disk_.InternalWrite(0, sector).ok());
  const Duration same_cyl = disk_.last_request().locate;
  // Same cylinder: no seek beyond rotation; far cylinder pays the seek curve.
  const Lba far = disk_.geometry().ToLba(PhysAddr{35, 0, 0});
  ASSERT_TRUE(disk_.InternalWrite(far, sector).ok());
  const Duration far_locate = disk_.last_request().locate;
  EXPECT_GE(far_locate, disk_.params().seek.SeekTime(35));
  EXPECT_LE(same_cyl, disk_.params().RotationPeriod());
}

TEST_F(SimDiskTest, RotationalWaitMatchesClockPhase) {
  const Duration period = disk_.params().RotationPeriod();
  const uint32_t n = disk_.geometry().sectors_per_track;
  // At time 0 the head is at sector 0; waiting for sector k takes k/n of a rotation.
  for (uint32_t k : {1u, 7u, n - 1}) {
    const Duration wait = disk_.RotationalWait(k, 0);
    EXPECT_NEAR(static_cast<double>(wait), static_cast<double>(period) * k / n, 2.0);
  }
  // Sector 0 at time 0: zero wait.
  EXPECT_EQ(disk_.RotationalWait(0, 0), 0);
}

TEST_F(SimDiskTest, SequentialTransferRunsAtMediaRate) {
  // Writing a whole track takes about one rotation of transfer time.
  const uint32_t n = disk_.geometry().sectors_per_track;
  const auto data = Pattern(static_cast<size_t>(n) * 512, 1);
  disk_.stats().Reset();
  ASSERT_TRUE(disk_.InternalWrite(0, data).ok());
  EXPECT_EQ(disk_.last_request().transfer, disk_.params().SectorTime() * n);
}

TEST_F(SimDiskTest, TrackBufferServesSequentialReread) {
  const auto data = Pattern(8 * 512, 9);
  ASSERT_TRUE(disk_.Write(16, data).ok());
  std::vector<std::byte> out(8 * 512);
  ASSERT_TRUE(disk_.Read(16, out).ok());  // Mechanical, populates the buffer.
  const uint64_t hits_before = disk_.stats().buffer_hits;
  ASSERT_TRUE(disk_.Read(16, out).ok());  // Same range: buffered.
  EXPECT_EQ(disk_.stats().buffer_hits, hits_before + 1);
}

TEST_F(SimDiskTest, StandardPolicyDiscardsLowerAddresses) {
  disk_.set_read_ahead_policy(ReadAheadPolicy::kStandard);
  std::vector<std::byte> out(512);
  ASSERT_TRUE(disk_.Read(40, out).ok());
  ASSERT_TRUE(disk_.Read(45, out).ok());
  // After reading ahead to 45, address 40 was discarded (lower than current request start).
  const uint64_t hits = disk_.stats().buffer_hits;
  ASSERT_TRUE(disk_.Read(40, out).ok());
  EXPECT_EQ(disk_.stats().buffer_hits, hits);
}

TEST_F(SimDiskTest, AggressivePolicyKeepsWholeTrack) {
  disk_.set_read_ahead_policy(ReadAheadPolicy::kAggressiveTrack);
  std::vector<std::byte> out(512);
  ASSERT_TRUE(disk_.Read(40, out).ok());  // Prefetches the entire track 0.
  uint64_t hits = disk_.stats().buffer_hits;
  ASSERT_TRUE(disk_.Read(10, out).ok());  // Lower address, same track: still buffered.
  EXPECT_EQ(disk_.stats().buffer_hits, hits + 1);
  ASSERT_TRUE(disk_.Read(70, out).ok());
  EXPECT_EQ(disk_.stats().buffer_hits, hits + 2);
}

TEST_F(SimDiskTest, WriteInvalidatesOverlappingBuffer) {
  std::vector<std::byte> out(512);
  ASSERT_TRUE(disk_.Read(40, out).ok());
  ASSERT_TRUE(disk_.Write(40, Pattern(512, 2)).ok());
  const uint64_t hits = disk_.stats().buffer_hits;
  ASSERT_TRUE(disk_.Read(40, out).ok());
  EXPECT_EQ(disk_.stats().buffer_hits, hits);  // Miss: buffer was invalidated.
}

TEST_F(SimDiskTest, EstimatePositionMatchesCharge) {
  // The allocator's cost estimate must agree with what servicing actually charges.
  std::vector<std::byte> sector(512);
  ASSERT_TRUE(disk_.InternalWrite(0, sector).ok());
  const Lba target = disk_.geometry().ToLba(PhysAddr{7, 3, 41});
  const Duration estimate = disk_.EstimatePosition(target, clock_.Now());
  ASSERT_TRUE(disk_.InternalWrite(target, sector).ok());
  EXPECT_EQ(disk_.last_request().locate, estimate);
}

TEST_F(SimDiskTest, InjectedWriteFailureLeavesMediaIntact) {
  ASSERT_TRUE(disk_.Write(8, Pattern(512, 1)).ok());
  disk_.SetWriteFailureAfter(1);
  EXPECT_TRUE(disk_.Write(16, Pattern(512, 2)).ok());   // One more succeeds.
  EXPECT_FALSE(disk_.Write(24, Pattern(512, 3)).ok());  // Then the power is gone.
  std::vector<std::byte> out(512);
  disk_.PeekMedia(24, out);
  EXPECT_EQ(out, std::vector<std::byte>(512));  // Untouched.
  disk_.SetWriteFailureAfter(std::nullopt);
  EXPECT_TRUE(disk_.Write(24, Pattern(512, 3)).ok());
}

TEST_F(SimDiskTest, TornPrefixFaultPersistsLeadingSectorsOnly) {
  const auto data = Pattern(4 * 512, 7);
  disk_.SetWriteFault(SimDisk::WriteFault{.mode = SimDisk::WriteFaultMode::kTornPrefix,
                                          .keep_sectors = 2});
  EXPECT_FALSE(disk_.Write(8, data).ok());
  std::vector<std::byte> out(4 * 512);
  disk_.PeekMedia(8, out);
  EXPECT_TRUE(std::equal(out.begin(), out.begin() + 2 * 512, data.begin()));
  EXPECT_EQ(std::vector<std::byte>(out.begin() + 2 * 512, out.end()),
            std::vector<std::byte>(2 * 512));  // Tail never reached the media.
}

TEST_F(SimDiskTest, TornSuffixFaultPersistsTrailingSectorsOnly) {
  const auto data = Pattern(4 * 512, 8);
  disk_.SetWriteFault(SimDisk::WriteFault{.mode = SimDisk::WriteFaultMode::kTornSuffix,
                                          .keep_sectors = 1});
  EXPECT_FALSE(disk_.Write(8, data).ok());
  std::vector<std::byte> out(4 * 512);
  disk_.PeekMedia(8, out);
  EXPECT_EQ(std::vector<std::byte>(out.begin(), out.begin() + 3 * 512),
            std::vector<std::byte>(3 * 512));
  EXPECT_TRUE(std::equal(out.begin() + 3 * 512, out.end(), data.begin() + 3 * 512));
}

TEST_F(SimDiskTest, TornRandomFaultIsDeterministicPerSeed) {
  const auto data = Pattern(8 * 512, 9);
  auto run = [&](uint64_t seed) {
    Clock clock;
    SimDisk disk(Truncated(Hp97560(), 36), &clock);
    disk.SetWriteFault(SimDisk::WriteFault{.mode = SimDisk::WriteFaultMode::kTornRandom,
                                           .seed = seed});
    EXPECT_FALSE(disk.Write(8, data).ok());
    std::vector<std::byte> out(8 * 512);
    disk.PeekMedia(8, out);
    return out;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // Overwhelmingly likely over eight sectors.
}

TEST_F(SimDiskTest, CorruptTailFaultDamagesOnlyTheLastSector) {
  const auto data = Pattern(4 * 512, 10);
  disk_.SetWriteFault(SimDisk::WriteFault{.mode = SimDisk::WriteFaultMode::kCorruptTail,
                                          .seed = 3});
  EXPECT_FALSE(disk_.Write(8, data).ok());
  std::vector<std::byte> out(4 * 512);
  disk_.PeekMedia(8, out);
  EXPECT_TRUE(std::equal(out.begin(), out.begin() + 3 * 512, data.begin()));
  EXPECT_NE(std::vector<std::byte>(out.begin() + 3 * 512, out.end()),
            std::vector<std::byte>(data.begin() + 3 * 512, data.end()));
}

TEST_F(SimDiskTest, FaultKeepsFiringUntilCleared) {
  disk_.SetWriteFault(SimDisk::WriteFault{.mode = SimDisk::WriteFaultMode::kFailStop,
                                          .after_writes = 1});
  EXPECT_TRUE(disk_.Write(8, Pattern(512, 1)).ok());
  EXPECT_FALSE(disk_.Write(16, Pattern(512, 2)).ok());
  EXPECT_FALSE(disk_.InternalWrite(24, Pattern(512, 3)).ok());  // Power stays off.
  std::vector<std::byte> out(512);
  EXPECT_TRUE(disk_.Read(8, out).ok());  // Reads are unaffected by the write fault.
  disk_.SetWriteFault(std::nullopt);
  EXPECT_TRUE(disk_.Write(16, Pattern(512, 2)).ok());
}

TEST_F(SimDiskTest, WriteObserverSeesOnlyAcknowledgedWrites) {
  std::vector<std::pair<Lba, size_t>> seen;
  disk_.set_write_observer([&](Lba lba, std::span<const std::byte> in, bool durable) {
    EXPECT_TRUE(durable);  // No write cache configured: every write is durable on ack.
    seen.emplace_back(lba, in.size());
  });
  ASSERT_TRUE(disk_.Write(8, Pattern(2 * 512, 1)).ok());
  ASSERT_TRUE(disk_.InternalWrite(32, Pattern(512, 2)).ok());
  disk_.SetWriteFault(SimDisk::WriteFault{.mode = SimDisk::WriteFaultMode::kTornPrefix,
                                          .keep_sectors = 1});
  EXPECT_FALSE(disk_.Write(64, Pattern(2 * 512, 3)).ok());  // Torn: not acknowledged.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<Lba, size_t>{8, 2 * 512}));
  EXPECT_EQ(seen[1], (std::pair<Lba, size_t>{32, 512}));
}

TEST(HostModel, ChargesAndAccounts) {
  Clock clock;
  HostModel host(SparcStation10(), &clock);
  host.ChargeSyscall();
  host.ChargeBlocks(2);
  host.ChargeCopy(4096);
  const Duration expected = common::Microseconds(100) + 2 * common::Microseconds(350) +
                            4 * common::Microseconds(12);
  EXPECT_EQ(clock.Now(), expected);
  EXPECT_EQ(host.total_charged(), expected);
}

TEST(HostModel, UltraSparcIsFasterByClockRatio) {
  const HostParams slow = SparcStation10();
  const HostParams fast = UltraSparc170();
  EXPECT_NEAR(static_cast<double>(fast.per_block_fs_cpu) / slow.per_block_fs_cpu, 50.0 / 167.0,
              0.01);
}

TEST(MediaBandwidth, SeagateIsAnOrderFasterThanHp) {
  // §2.1: locating a free sector scales with platter bandwidth; the ST19101 moves ~7x more
  // bytes per second under the head than the HP97560.
  const double hp = Hp97560().MediaBandwidthMbPerS();
  const double st = SeagateSt19101().MediaBandwidthMbPerS();
  EXPECT_GT(st / hp, 5.0);
}

}  // namespace
}  // namespace vlog::simdisk
