// Crash sweeps over the 2-member virtual-log array: per-member crash points on the global
// disk-tagged trace, torn member commits, reordered mid-destage subsets on one member while
// the other sits at its barrier, and the array's stitched recovery (striped per-member-group
// atomicity, mirrored replica resync) at every point.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <set>
#include <string>

#include "src/common/status.h"
#include "src/crashsim/array_harness.h"
#include "src/crashsim/crash_point.h"
#include "src/crashsim/harness.h"
#include "src/crashsim/scenarios.h"
#include "src/crashsim/write_trace.h"

namespace vlog::crashsim {

// Base seed for the randomized sweep parts, and the optional single-ordinal replay — both
// overridable from the command line so the Summary() banner's replay command works verbatim:
//   array_crashsim_test --seed=N --point=K
uint64_t g_sweep_seed = 1;
int64_t g_sweep_point = -1;

namespace {

bool Replaying() { return g_sweep_point >= 0; }

CrashSweepOptions SeededSweepOptions() {
  CrashSweepOptions options;
  options.enumerate.seed = g_sweep_seed;
  options.reorder.seed = g_sweep_seed;
  options.only_ordinal = g_sweep_point;
  return options;
}

// Striped, write-through members: torn/corrupt points cut inside individual member commits,
// including the packed group-commit map writes a cross-disk batch produces on each member.
TEST(ArrayCrashSweepTest, StripedGroupCommitHasNoViolations) {
  ArrayCrashSim sim(CrashSimDiskParams(), CrashSimVldConfig(), CrashSimStripedArrayConfig(),
                    /*member_count=*/2);
  const common::Status recorded = RecordArrayScenario(ArrayScenario::kStripedGroupCommit, sim);
  ASSERT_TRUE(recorded.ok()) << recorded.ToString();
  // The recorded trace really is multi-disk: both members contributed media writes.
  std::set<uint32_t> disks;
  for (size_t i = 0; i < sim.trace().size(); ++i) {
    disks.insert(sim.trace()[i].disk);
  }
  EXPECT_EQ(disks, (std::set<uint32_t>{0, 1}));

  const CrashSweepReport report = sim.Sweep(SeededSweepOptions());
  std::cout << "[ array ] striped: " << report.Summary() << "\n";
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.points, 100u) << report.Summary();
  EXPECT_GE(report.torn_points, 20u) << report.Summary();
  if (!Replaying()) {
    // No park in the workload: every member recovery takes the scan path.
    EXPECT_EQ(report.park_recoveries, 0u) << report.Summary();
    EXPECT_GT(report.scan_recoveries, 0u) << report.Summary();
  }
}

// Same striped scenario on write-back cached members: kReorder points scramble one member's
// mid-destage writes while the other member's image stays at its last barrier — the "subset of
// the disks torn/reordered" model.
TEST(ArrayCrashSweepTest, StripedCachedDestageHasNoViolations) {
  ArrayCrashSim sim(CrashSimCachedDiskParams(), CrashSimVldConfig(),
                    CrashSimStripedArrayConfig(), /*member_count=*/2);
  const common::Status recorded = RecordArrayScenario(ArrayScenario::kStripedGroupCommit, sim);
  ASSERT_TRUE(recorded.ok()) << recorded.ToString();
  const CrashSweepReport report = sim.Sweep(SeededSweepOptions());
  std::cout << "[ array ] striped-cached: " << report.Summary() << "\n";
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.reorder_points, 50u) << report.Summary();
}

// Mirrored, cached members: crash points that land between the two replica commits leave one
// replica ahead; the stitched recovery's resync must converge both to an all-old-or-all-new
// view without ever rolling back an acknowledged write.
TEST(ArrayCrashSweepTest, MirroredResyncHasNoViolations) {
  ArrayCrashSim sim(CrashSimCachedDiskParams(), CrashSimVldConfig(),
                    CrashSimMirroredArrayConfig(), /*member_count=*/2);
  const common::Status recorded = RecordArrayScenario(ArrayScenario::kMirroredResync, sim);
  ASSERT_TRUE(recorded.ok()) << recorded.ToString();
  const CrashSweepReport report = sim.Sweep(SeededSweepOptions());
  std::cout << "[ array ] mirrored: " << report.Summary() << "\n";
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.points, 100u) << report.Summary();
  EXPECT_GE(report.reorder_points, 30u) << report.Summary();
}

// Satellite: the failure banner must print a complete replay command — both the seed and the
// ordinal of the first violating point — not just the seed.
TEST(ArrayCrashSweepTest, ViolationSummaryPrintsFullReplayCommand) {
  CrashSweepReport report;
  report.seed = 5;
  CrashPoint point;
  point.ordinal = 7;
  point.kind = CrashKind::kTornPrefix;
  point.keep_sectors = 2;
  report.AddViolation(point, "synthetic violation", 8);
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("--seed=5"), std::string::npos) << summary;
  EXPECT_NE(summary.find("--point=7"), std::string::npos) << summary;
}

// Replay narrows the sweep to one ordinal but still enumerates (and counts) every point, so a
// replayed report stays comparable to the failing run's banner.
TEST(ArrayCrashSweepTest, OnlyOrdinalReplaysSinglePoint) {
  ArrayCrashSim sim(CrashSimDiskParams(), CrashSimVldConfig(), CrashSimStripedArrayConfig(),
                    /*member_count=*/2);
  ASSERT_TRUE(RecordArrayScenario(ArrayScenario::kStripedGroupCommit, sim).ok());
  CrashSweepOptions options = SeededSweepOptions();
  options.only_ordinal = 3;
  const CrashSweepReport report = sim.Sweep(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.points, 100u);
  EXPECT_EQ(report.recovery_times.size(), 1u) << "replay must recover exactly one point";
}

}  // namespace
}  // namespace vlog::crashsim

// Custom main so a sweep failure is replayable with the exact command its Summary() prints:
// --seed=N reproduces the point list, --point=K narrows the sweep to the violating ordinal.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      vlog::crashsim::g_sweep_seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--point=", 8) == 0) {
      vlog::crashsim::g_sweep_point = std::strtoll(argv[i] + 8, nullptr, 10);
    }
  }
  return RUN_ALL_TESTS();
}
