// Property tests for the open-loop arrival processes (Poisson, ON-OFF, diurnal): schedules
// are a pure function of (seed, options), interarrival means track the configured rates, and
// pre-generation is clock-pure — it never moves a SimDisk's virtual clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/time.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"
#include "src/workload/queue_sweep.h"

namespace vlog::workload {
namespace {

double MeanRatePerSecond(const std::vector<common::Time>& arrivals, common::Time start) {
  const common::Duration span = arrivals.back() - start;
  return static_cast<double>(arrivals.size()) / common::ToSeconds(span);
}

TEST(ArrivalProcessTest, DeterministicPerSeedAndSensitiveToSeed) {
  for (const ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kOnOff, ArrivalProcess::kDiurnal}) {
    OpenLoopOptions options;
    options.process = process;
    options.arrivals = 2000;
    options.seed = 9;
    const std::vector<common::Time> a = GenerateArrivals(options, 0);
    const std::vector<common::Time> b = GenerateArrivals(options, 0);
    EXPECT_EQ(a, b);
    options.seed = 10;
    EXPECT_NE(GenerateArrivals(options, 0), a);
  }
}

TEST(ArrivalProcessTest, StrictlyIncreasingAndCorrectCount) {
  for (const ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kOnOff, ArrivalProcess::kDiurnal}) {
    OpenLoopOptions options;
    options.process = process;
    options.arrivals = 3000;
    const common::Time start = common::Seconds(5);
    const std::vector<common::Time> arrivals = GenerateArrivals(options, start);
    ASSERT_EQ(arrivals.size(), 3000u);
    EXPECT_GT(arrivals.front(), start);
    for (size_t i = 1; i < arrivals.size(); ++i) {
      ASSERT_LT(arrivals[i - 1], arrivals[i]) << "index " << i;
    }
  }
}

TEST(ArrivalProcessTest, PoissonMeanInterarrivalMatchesRate) {
  OpenLoopOptions options;
  options.rate_ops_per_s = 2000;
  options.arrivals = 20000;
  const std::vector<common::Time> arrivals = GenerateArrivals(options, 0);
  // 20k exponential draws: the sample mean sits within a few percent of 1/rate.
  EXPECT_NEAR(MeanRatePerSecond(arrivals, 0), 2000, 2000 * 0.05);
}

TEST(ArrivalProcessTest, OnOffConfinesArrivalsToOnPhasesAtTheOnRate) {
  OpenLoopOptions options;
  options.process = ArrivalProcess::kOnOff;
  options.rate_ops_per_s = 2000;
  options.on_duration = common::Milliseconds(250);
  options.off_duration = common::Milliseconds(750);
  options.arrivals = 10000;
  const std::vector<common::Time> arrivals = GenerateArrivals(options, 0);
  const common::Duration cycle = options.on_duration + options.off_duration;
  for (const common::Time t : arrivals) {
    ASSERT_LT(t % cycle, options.on_duration) << "arrival in an OFF phase at " << t;
  }
  // Averaged over whole cycles the offered rate is rate * on/(on+off) = 500/s, and the rate
  // *within* ON time is the full configured 2000/s.
  EXPECT_NEAR(MeanRatePerSecond(arrivals, 0), 500, 500 * 0.05);
}

TEST(ArrivalProcessTest, DiurnalMeanMatchesBaseRateAndPeakBeatsTrough) {
  OpenLoopOptions options;
  options.process = ArrivalProcess::kDiurnal;
  options.rate_ops_per_s = 1000;
  options.diurnal_period = common::Milliseconds(400);
  options.diurnal_amplitude = 0.8;
  options.arrivals = 20000;
  const std::vector<common::Time> arrivals = GenerateArrivals(options, 0);
  // sin integrates to zero over whole periods, so the long-run mean is the base rate.
  EXPECT_NEAR(MeanRatePerSecond(arrivals, 0), 1000, 1000 * 0.05);
  // The first half-period of each cycle (sin > 0) must hold more arrivals than the second.
  uint64_t peak_half = 0;
  uint64_t trough_half = 0;
  for (const common::Time t : arrivals) {
    if (t % options.diurnal_period < options.diurnal_period / 2) {
      ++peak_half;
    } else {
      ++trough_half;
    }
  }
  EXPECT_GT(static_cast<double>(peak_half), 1.3 * static_cast<double>(trough_half));
}

TEST(ArrivalProcessTest, BurstIntervalOverridesEveryProcess) {
  for (const ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kOnOff, ArrivalProcess::kDiurnal}) {
    OpenLoopOptions options;
    options.process = process;
    options.rate_ops_per_s = 200;
    options.burst_rate_ops_per_s = 4000;
    options.burst_start = common::Seconds(1);
    options.burst_duration = common::Milliseconds(500);
    options.arrivals = 4000;
    const std::vector<common::Time> arrivals = GenerateArrivals(options, 0);
    uint64_t in_burst = 0;
    for (const common::Time t : arrivals) {
      if (t >= options.burst_start && t < options.burst_start + options.burst_duration) {
        ++in_burst;
      }
    }
    // ~2000 arrivals land inside the declared burst; without the override the half second
    // would hold ~100 at most (ON-OFF/diurnal shape included).
    EXPECT_GT(in_burst, 1200u) << "process " << static_cast<int>(process);
  }
}

TEST(ArrivalProcessTest, GenerationIsClockPure) {
  // Pre-generation must not move simulated time: it is a pure function of seed and options,
  // independent of any device. Hold a live SimDisk while generating and watch its clock.
  common::Clock clock;
  simdisk::SimDisk disk(simdisk::Truncated(simdisk::Hp97560(), 4), &clock);
  clock.Advance(common::Seconds(3));
  const common::Time before = clock.Now();
  for (const ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kOnOff, ArrivalProcess::kDiurnal}) {
    OpenLoopOptions options;
    options.process = process;
    options.arrivals = 5000;
    const std::vector<common::Time> arrivals = GenerateArrivals(options, clock.Now());
    ASSERT_EQ(arrivals.size(), 5000u);
    EXPECT_EQ(clock.Now(), before);
    EXPECT_EQ(disk.clock()->Now(), before);
  }
}

}  // namespace
}  // namespace vlog::workload
