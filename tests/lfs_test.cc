#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/lfs/log_disk.h"
#include "src/lfs/simple_fs.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/host_model.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::lfs {
namespace {

std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 53 + i * 3));
  }
  return v;
}

class LogDiskTest : public ::testing::Test {
 protected:
  LogDiskTest()
      : disk_(simdisk::Truncated(simdisk::SeagateSt19101(), 6), &clock_), lld_(&disk_) {
    EXPECT_TRUE(lld_.Format().ok());
  }
  common::Clock clock_;
  simdisk::SimDisk disk_;
  LogStructuredDisk lld_;
};

TEST_F(LogDiskTest, LayoutExportsMostOfTheDisk) {
  // 12 MB disk -> 24 segments; 3 reserved.
  EXPECT_EQ(lld_.LogicalBlocks(), (24u - 3u) * 127u);
}

TEST_F(LogDiskTest, WriteReadRoundTripThroughBuffer) {
  const auto data = Pattern(4096, 1);
  ASSERT_TRUE(lld_.WriteBlock(5, data).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(lld_.ReadBlock(5, out).ok());  // Still in the open segment buffer.
  EXPECT_EQ(out, data);
  EXPECT_GE(lld_.stats().buffer_read_hits, 1u);
}

TEST_F(LogDiskTest, WriteReadRoundTripThroughDisk) {
  const auto data = Pattern(4096, 2);
  ASSERT_TRUE(lld_.WriteBlock(7, data).ok());
  ASSERT_TRUE(lld_.Sync().ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(lld_.ReadBlock(7, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(LogDiskTest, UnwrittenBlocksReadZero) {
  std::vector<std::byte> out(4096, std::byte{0xAA});
  ASSERT_TRUE(lld_.ReadBlock(100, out).ok());
  EXPECT_EQ(out, std::vector<std::byte>(4096));
}

TEST_F(LogDiskTest, OverwritesAbsorbedInBuffer) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(lld_.WriteBlock(3, Pattern(4096, i)).ok());
  }
  EXPECT_EQ(lld_.stats().blocks_absorbed, 9u);
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(lld_.ReadBlock(3, out).ok());
  EXPECT_EQ(out, Pattern(4096, 9));
}

TEST_F(LogDiskTest, SegmentSealsWhenFull) {
  for (uint32_t b = 0; b < 127; ++b) {
    ASSERT_TRUE(lld_.WriteBlock(b, Pattern(4096, b)).ok());
  }
  ASSERT_TRUE(lld_.WriteBlock(127, Pattern(4096, 127)).ok());  // Forces a seal + new segment.
  EXPECT_EQ(lld_.stats().segment_writes, 1u);
}

TEST_F(LogDiskTest, PartialSegmentRuleOnSync) {
  // Below the 75% threshold: the segment stays open and keeps absorbing.
  for (uint32_t b = 0; b < 10; ++b) {
    ASSERT_TRUE(lld_.WriteBlock(b, Pattern(4096, b)).ok());
  }
  ASSERT_TRUE(lld_.Sync().ok());
  EXPECT_EQ(lld_.stats().partial_segment_writes, 1u);
  EXPECT_EQ(lld_.stats().segment_writes, 0u);
  // A second sync after more writes appends the delta to the same segment.
  ASSERT_TRUE(lld_.WriteBlock(50, Pattern(4096, 50)).ok());
  ASSERT_TRUE(lld_.Sync().ok());
  EXPECT_EQ(lld_.stats().partial_segment_writes, 2u);

  // Above the threshold: sealed as if full.
  for (uint32_t b = 0; b < 100; ++b) {
    ASSERT_TRUE(lld_.WriteBlock(200 + b, Pattern(4096, b)).ok());
  }
  ASSERT_TRUE(lld_.Sync().ok());
  EXPECT_EQ(lld_.stats().segment_writes, 1u);
}

TEST_F(LogDiskTest, TrimmedBlocksReadZeroAndFreeSpace) {
  ASSERT_TRUE(lld_.WriteBlock(9, Pattern(4096, 9)).ok());
  ASSERT_TRUE(lld_.Sync().ok());
  ASSERT_TRUE(lld_.TrimBlock(9).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(lld_.ReadBlock(9, out).ok());
  EXPECT_EQ(out, std::vector<std::byte>(4096));
}

TEST_F(LogDiskTest, CleanerReclaimsDeadSegments) {
  // Fill most of the logical space, then overwrite everything to create dead segments; the
  // cleaner must keep the disk writable throughout.
  const uint32_t blocks = lld_.LogicalBlocks() * 3 / 4;
  std::vector<uint32_t> version(blocks, 0);
  for (uint32_t b = 0; b < blocks; ++b) {
    ASSERT_TRUE(lld_.WriteBlock(b, Pattern(4096, b)).ok());
    version[b] = b;
  }
  ASSERT_TRUE(lld_.Sync().ok());
  // Strided overwrites kill blocks scattered across many segments, so free segments can only
  // come from the cleaner.
  for (uint32_t i = 0; i < blocks * 3; ++i) {
    const uint32_t b = (i * 37) % blocks;
    version[b] = blocks + i;
    ASSERT_TRUE(lld_.WriteBlock(b, Pattern(4096, version[b])).ok()) << i;
  }
  ASSERT_TRUE(lld_.Sync().ok());
  EXPECT_GT(lld_.stats().cleaner_runs, 0u);
  EXPECT_GT(lld_.stats().segments_cleaned, 0u);
  std::vector<std::byte> out(4096);
  for (uint32_t b = 0; b < blocks; b += 13) {
    ASSERT_TRUE(lld_.ReadBlock(b, out).ok());
    ASSERT_EQ(out, Pattern(4096, version[b])) << b;
  }
}

TEST_F(LogDiskTest, IdleCleaningCreatesFreeSegments) {
  const uint32_t blocks = lld_.LogicalBlocks();  // Fill everything so free segments are scarce.
  for (uint32_t b = 0; b < blocks; ++b) {
    ASSERT_TRUE(lld_.WriteBlock(b, Pattern(4096, b)).ok());
  }
  ASSERT_TRUE(lld_.Sync().ok());
  // Punch holes.
  for (uint32_t b = 0; b < blocks; b += 2) {
    ASSERT_TRUE(lld_.TrimBlock(b).ok());
  }
  const uint32_t before = lld_.FreeSegments();
  ASSERT_TRUE(lld_.CleanDuringIdle(clock_.Now() + common::Seconds(2), &clock_).ok());
  EXPECT_GT(lld_.FreeSegments(), before);
}

class SimpleFsTest : public ::testing::Test {
 protected:
  SimpleFsTest()
      : disk_(simdisk::Truncated(simdisk::SeagateSt19101(), 6), &clock_),
        lld_(&disk_),
        host_(simdisk::ZeroCostHost(), &clock_),
        fs_(&lld_, &host_) {
    EXPECT_TRUE(lld_.Format().ok());
    EXPECT_TRUE(fs_.Format().ok());
  }
  common::Clock clock_;
  simdisk::SimDisk disk_;
  LogStructuredDisk lld_;
  simdisk::HostModel host_;
  SimpleFs fs_;
};

TEST_F(SimpleFsTest, CreateWriteReadRemove) {
  ASSERT_TRUE(fs_.Create("/a").ok());
  const auto data = Pattern(10000, 1);
  ASSERT_TRUE(fs_.Write("/a", 0, data, fs::WritePolicy::kAsync).ok());
  std::vector<std::byte> out(data.size());
  auto n = fs_.Read("/a", 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(fs_.Remove("/a").ok());
  EXPECT_FALSE(fs_.Stat("/a").ok());
}

TEST_F(SimpleFsTest, AsyncWritesStayInCache) {
  ASSERT_TRUE(fs_.Create("/buf").ok());
  const uint64_t before = disk_.stats().write_requests;
  ASSERT_TRUE(fs_.Write("/buf", 0, Pattern(65536, 2), fs::WritePolicy::kAsync).ok());
  EXPECT_EQ(disk_.stats().write_requests, before);
  ASSERT_TRUE(fs_.Sync().ok());
  EXPECT_GT(disk_.stats().write_requests, before);
}

TEST_F(SimpleFsTest, SyncWriteForcesPartialSegment) {
  ASSERT_TRUE(fs_.Create("/s").ok());
  ASSERT_TRUE(fs_.Write("/s", 0, Pattern(4096, 3), fs::WritePolicy::kSync).ok());
  EXPECT_GE(lld_.stats().partial_segment_writes + lld_.stats().segment_writes, 1u);
}

TEST_F(SimpleFsTest, SurvivesDropCaches) {
  ASSERT_TRUE(fs_.Create("/d").ok());
  const auto data = Pattern(30000, 4);
  ASSERT_TRUE(fs_.Write("/d", 0, data, fs::WritePolicy::kAsync).ok());
  ASSERT_TRUE(fs_.DropCaches().ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(fs_.Read("/d", 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(SimpleFsTest, ManyFilesAndDirectories) {
  ASSERT_TRUE(fs_.Mkdir("/dir").ok());
  for (int i = 0; i < 150; ++i) {
    const std::string path = "/dir/f" + std::to_string(i);
    ASSERT_TRUE(fs_.Create(path).ok());
    ASSERT_TRUE(fs_.Write(path, 0, Pattern(1024, i), fs::WritePolicy::kAsync).ok());
  }
  ASSERT_TRUE(fs_.DropCaches().ok());
  auto names = fs_.List("/dir");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 150u);
  std::vector<std::byte> out(1024);
  for (int i = 0; i < 150; i += 11) {
    ASSERT_TRUE(fs_.Read("/dir/f" + std::to_string(i), 0, out).ok());
    EXPECT_EQ(out, Pattern(1024, i)) << i;
  }
}

TEST_F(SimpleFsTest, RandomizedAgainstShadow) {
  common::Rng rng(99);
  ASSERT_TRUE(fs_.Create("/r").ok());
  std::vector<std::byte> shadow(512 * 1024, std::byte{0});
  uint64_t file_size = 0;
  for (int op = 0; op < 400; ++op) {
    const uint64_t max_off = std::min<uint64_t>(file_size, shadow.size() - 8192);
    const uint64_t off = rng.Below(max_off + 1);
    const size_t len = 1 + rng.Below(8191);
    const auto data = Pattern(len, op);
    ASSERT_TRUE(fs_.Write("/r", off, data,
                          rng.Chance(0.2) ? fs::WritePolicy::kSync : fs::WritePolicy::kAsync)
                    .ok());
    std::memcpy(shadow.data() + off, data.data(), len);
    file_size = std::max<uint64_t>(file_size, off + len);
    if (rng.Chance(0.1)) {
      const uint64_t roff = rng.Below(file_size);
      std::vector<std::byte> out(std::min<uint64_t>(4096, file_size - roff));
      auto n = fs_.Read("/r", roff, out);
      ASSERT_TRUE(n.ok());
      ASSERT_EQ(*n, out.size());
      ASSERT_TRUE(std::equal(out.begin(), out.end(), shadow.begin() + roff)) << "op " << op;
    }
  }
  ASSERT_TRUE(fs_.DropCaches().ok());
  std::vector<std::byte> out(file_size);
  ASSERT_TRUE(fs_.Read("/r", 0, out).ok());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), shadow.begin()));
}

TEST_F(SimpleFsTest, SteadyStateOverwriteChurnStaysFunctional) {
  // Something like Figure 8's workload: a large file, random 4 KB overwrites, cache pressure,
  // cleaner activity — and the data must stay right.
  ASSERT_TRUE(fs_.Create("/churn").ok());
  const uint32_t blocks = 1800;  // ~7 MB file on a ~10 MB logical disk.
  std::vector<uint32_t> version(blocks, 0);
  for (uint32_t b = 0; b < blocks; ++b) {
    ASSERT_TRUE(fs_.Write("/churn", static_cast<uint64_t>(b) * 4096, Pattern(4096, b),
                          fs::WritePolicy::kAsync).ok());
    version[b] = b;
  }
  ASSERT_TRUE(fs_.Sync().ok());
  common::Rng rng(5);
  for (int i = 0; i < 6000; ++i) {
    const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
    version[b] = 10000 + i;
    ASSERT_TRUE(fs_.Write("/churn", static_cast<uint64_t>(b) * 4096,
                          Pattern(4096, version[b]), fs::WritePolicy::kAsync).ok());
  }
  ASSERT_TRUE(fs_.DropCaches().ok());
  EXPECT_GT(lld_.stats().cleaner_runs, 0u);
  std::vector<std::byte> out(4096);
  for (uint32_t b = 0; b < blocks; b += 37) {
    ASSERT_TRUE(fs_.Read("/churn", static_cast<uint64_t>(b) * 4096, out).ok());
    ASSERT_EQ(out, Pattern(4096, version[b])) << b;
  }
}

// LFS runs unmodified on the VLD too (the paper's fourth configuration).
TEST(LfsOnVld, FunctionalRoundTrip) {
  common::Clock clock;
  simdisk::SimDisk raw(simdisk::Truncated(simdisk::SeagateSt19101(), 6), &clock);
  core::Vld* vld_ptr = nullptr;
  (void)vld_ptr;
  auto vld = std::make_unique<core::Vld>(&raw);
  ASSERT_TRUE(vld->Format().ok());
  LogStructuredDisk lld(vld.get());
  ASSERT_TRUE(lld.Format().ok());
  simdisk::HostModel host(simdisk::ZeroCostHost(), &clock);
  SimpleFs fs(&lld, &host);
  ASSERT_TRUE(fs.Format().ok());
  ASSERT_TRUE(fs.Create("/x").ok());
  const auto data = Pattern(100000, 6);
  ASSERT_TRUE(fs.Write("/x", 0, data, fs::WritePolicy::kAsync).ok());
  ASSERT_TRUE(fs.DropCaches().ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(fs.Read("/x", 0, out).ok());
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace vlog::lfs
