#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/core/virtual_log.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::core {
namespace {

constexpr uint32_t kPieces = 6;
constexpr uint32_t kBlockSectors = 8;

// A VirtualLog with its supporting disk/space/allocator, on a small HP-like disk.
class VirtualLogTest : public ::testing::Test {
 protected:
  VirtualLogTest() { Reset(/*pinned_limit=*/64); }

  void Reset(uint32_t pinned_limit) {
    clock_ = common::Clock();
    disk_.emplace(simdisk::Truncated(simdisk::Hp97560(), 6), &clock_);
    space_.emplace(disk_->geometry(), kBlockSectors);
    MarkSystemRegion();
    allocator_.emplace(&*disk_, &*space_, AllocatorConfig{});
    vlog_.emplace(&*disk_, &*allocator_,
                  VirtualLogConfig{.pieces = kPieces,
                                   .block_sectors = kBlockSectors,
                                   .park_lba = 0,
                                   .checkpoint_lba = 1,
                                   .pinned_limit = pinned_limit});
    ASSERT_TRUE(vlog_->Format().ok());
  }

  // System region: park sector + the double-buffered checkpoint region (2*(pieces+1) sectors).
  void MarkSystemRegion() {
    const uint32_t sectors = VirtualLog::ReservedSectors(kPieces);
    for (uint32_t b = 0; b < (sectors + kBlockSectors - 1) / kBlockSectors; ++b) {
      space_->MarkSystem(b);
    }
  }

  // Simulates a restart: fresh in-memory state over the same media.
  void Reopen() {
    space_.emplace(disk_->geometry(), kBlockSectors);
    MarkSystemRegion();
    allocator_.emplace(&*disk_, &*space_, AllocatorConfig{});
    VirtualLogConfig cfg = vlog_->config();
    vlog_.emplace(&*disk_, &*allocator_, cfg);
  }

  static std::vector<uint32_t> Entries(uint32_t fill) {
    std::vector<uint32_t> e(kEntriesPerSector, kUnmappedBlock);
    e[0] = fill;
    e[1] = fill * 2 + 1;
    return e;
  }

  // After recovery, live map blocks must be re-marked before further appends.
  void RemarkLiveBlocks() {
    for (uint32_t k = 0; k < kPieces; ++k) {
      if (const auto block = vlog_->LiveBlockOfPiece(k)) {
        space_->MarkLive(*block);
      }
    }
    for (const uint32_t block : vlog_->PinnedBlocks()) {
      space_->MarkLive(block);
    }
  }

  common::Clock clock_;
  std::optional<simdisk::SimDisk> disk_;
  std::optional<FreeSpaceMap> space_;
  std::optional<EagerAllocator> allocator_;
  std::optional<VirtualLog> vlog_;
};

TEST_F(VirtualLogTest, FreshLogRecoversEmpty) {
  ASSERT_TRUE(vlog_->Park().ok());
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->used_scan);
  for (const auto& piece : result->pieces) {
    EXPECT_TRUE(piece.empty());
  }
}

TEST_F(VirtualLogTest, AppendParkRecoverRoundTrip) {
  ASSERT_TRUE(vlog_->AppendPiece(0, Entries(10)).ok());
  ASSERT_TRUE(vlog_->AppendPiece(3, Entries(20)).ok());
  ASSERT_TRUE(vlog_->Park().ok());
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->used_scan);
  EXPECT_EQ(result->pieces[0], Entries(10));
  EXPECT_EQ(result->pieces[3], Entries(20));
  EXPECT_TRUE(result->pieces[1].empty());
  EXPECT_TRUE(result->uncovered_pieces.empty());
}

TEST_F(VirtualLogTest, YoungestVersionWinsAfterOverwrites) {
  for (uint32_t v = 0; v < 25; ++v) {
    ASSERT_TRUE(vlog_->AppendPiece(1, Entries(v)).ok());
  }
  ASSERT_TRUE(vlog_->Park().ok());
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pieces[1], Entries(24));
}

TEST_F(VirtualLogTest, OverwritingRecyclesBlocks) {
  for (uint32_t v = 0; v < 25; ++v) {
    ASSERT_TRUE(vlog_->AppendPiece(1, Entries(v)).ok());
  }
  // One live sector plus maybe a few pinned: nearly all 25 appends were recycled.
  EXPECT_GE(vlog_->stats().recycled_blocks, 20u);
  EXPECT_LE(space_->live_blocks(), 1 + vlog_->PinnedCount());
}

TEST_F(VirtualLogTest, CrashWithoutParkFallsBackToScan) {
  ASSERT_TRUE(vlog_->AppendPiece(2, Entries(7)).ok());
  // No Park: a crash. The stale park sector was cleared at Format.
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_scan);
  EXPECT_EQ(result->pieces[2], Entries(7));
}

TEST_F(VirtualLogTest, ParkIsClearedAfterRecovery) {
  ASSERT_TRUE(vlog_->AppendPiece(0, Entries(1)).ok());
  ASSERT_TRUE(vlog_->Park().ok());
  Reopen();
  ASSERT_TRUE(vlog_->Recover().ok());
  RemarkLiveBlocks();
  ASSERT_TRUE(vlog_->AppendPiece(0, Entries(2)).ok());
  // Crash now: the old park record must not be trusted (it was cleared), so scan runs and
  // finds the newer version.
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_scan);
  EXPECT_EQ(result->pieces[0], Entries(2));
}

TEST_F(VirtualLogTest, TransactionAppliedAtomicallyWhenComplete) {
  std::vector<VirtualLog::PieceUpdate> updates;
  updates.push_back({0, Entries(100)});
  updates.push_back({1, Entries(101)});
  updates.push_back({2, Entries(102)});
  ASSERT_TRUE(vlog_->AppendTransaction(updates).ok());
  ASSERT_TRUE(vlog_->Park().ok());
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pieces[0], Entries(100));
  EXPECT_EQ(result->pieces[1], Entries(101));
  EXPECT_EQ(result->pieces[2], Entries(102));
  EXPECT_EQ(result->discarded_txn_sectors, 0u);
}

TEST_F(VirtualLogTest, InterruptedTransactionRollsBackEveryPiece) {
  ASSERT_TRUE(vlog_->AppendPiece(0, Entries(1)).ok());
  ASSERT_TRUE(vlog_->AppendPiece(1, Entries(2)).ok());
  // Crash after the first sector of a two-piece transaction hits the disk.
  disk_->SetWriteFailureAfter(1);
  std::vector<VirtualLog::PieceUpdate> updates;
  updates.push_back({0, Entries(50)});
  updates.push_back({1, Entries(51)});
  EXPECT_FALSE(vlog_->AppendTransaction(updates).ok());
  disk_->SetWriteFailureAfter(std::nullopt);
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->discarded_txn_sectors, 1u);
  EXPECT_EQ(result->pieces[0], Entries(1)) << "must roll back to the pre-transaction version";
  EXPECT_EQ(result->pieces[1], Entries(2));
}

TEST_F(VirtualLogTest, CheckpointSeedsRecoveryAndFreesLog) {
  std::vector<std::vector<uint32_t>> all(kPieces);
  for (uint32_t k = 0; k < kPieces; ++k) {
    all[k] = Entries(k + 60);
    ASSERT_TRUE(vlog_->AppendPiece(k, all[k]).ok());
  }
  const uint64_t live_before = space_->live_blocks();
  ASSERT_TRUE(vlog_->WriteCheckpoint(all).ok());
  EXPECT_LT(space_->live_blocks(), live_before);
  // Post-checkpoint append, then clean shutdown.
  ASSERT_TRUE(vlog_->AppendPiece(2, Entries(99)).ok());
  ASSERT_TRUE(vlog_->Park().ok());
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->from_checkpoint);
  EXPECT_EQ(result->pieces[2], Entries(99)) << "log beats checkpoint";
  EXPECT_EQ(result->pieces[4], Entries(64)) << "checkpoint fills unlogged pieces";
}

TEST_F(VirtualLogTest, ScanRecoveryHonorsCheckpointBoundary) {
  std::vector<std::vector<uint32_t>> all(kPieces);
  for (uint32_t k = 0; k < kPieces; ++k) {
    all[k] = Entries(k);
    ASSERT_TRUE(vlog_->AppendPiece(k, all[k]).ok());
  }
  all[1] = Entries(500);
  ASSERT_TRUE(vlog_->AppendPiece(1, all[1]).ok());
  ASSERT_TRUE(vlog_->WriteCheckpoint(all).ok());
  ASSERT_TRUE(vlog_->AppendPiece(0, Entries(700)).ok());
  Reopen();  // Crash (no park) -> scan.
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_scan);
  EXPECT_EQ(result->pieces[0], Entries(700));
  EXPECT_EQ(result->pieces[1], Entries(500));
}

TEST_F(VirtualLogTest, AutoCheckpointValveBoundsPinnedSectors) {
  Reset(/*pinned_limit=*/0);
  std::vector<std::vector<uint32_t>> shadow(kPieces);
  vlog_->SetEntriesProvider([this, &shadow](uint32_t piece) { return shadow[piece]; });
  common::Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const uint32_t piece = static_cast<uint32_t>(rng.Below(kPieces));
    shadow[piece] = Entries(static_cast<uint32_t>(i));
    ASSERT_TRUE(vlog_->AppendPiece(piece, shadow[piece]).ok());
    ASSERT_LE(vlog_->PinnedCount(), 1u);
  }
  ASSERT_TRUE(vlog_->Park().ok());
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  for (uint32_t k = 0; k < kPieces; ++k) {
    EXPECT_EQ(result->pieces[k], shadow[k]) << "piece " << k;
  }
}

// The crown-jewel property test: random appends/transactions with freed blocks being actively
// reused as "data" (overwritten with junk), interleaved with random crashes (scan recovery) and
// clean shutdowns (park recovery). After every recovery the map must equal the shadow model.
TEST_F(VirtualLogTest, RandomizedCrashRecoveryMatchesShadow) {
  common::Rng rng(20260706);
  std::vector<std::vector<uint32_t>> shadow(kPieces);
  uint32_t version = 0;

  for (int round = 0; round < 30; ++round) {
    const int ops = 1 + static_cast<int>(rng.Below(40));
    for (int op = 0; op < ops; ++op) {
      if (rng.Chance(0.25)) {
        // Multi-piece transaction.
        std::vector<VirtualLog::PieceUpdate> updates;
        const uint32_t count = 2 + static_cast<uint32_t>(rng.Below(3));
        std::vector<std::vector<uint32_t>> staged = shadow;
        for (uint32_t i = 0; i < count; ++i) {
          uint32_t piece = static_cast<uint32_t>(rng.Below(kPieces));
          bool duplicate = false;
          for (const auto& u : updates) {
            duplicate |= u.piece == piece;
          }
          if (duplicate) {
            continue;
          }
          staged[piece] = Entries(++version);
          updates.push_back({piece, staged[piece]});
        }
        ASSERT_TRUE(vlog_->AppendTransaction(updates).ok());
        shadow = staged;
      } else {
        const uint32_t piece = static_cast<uint32_t>(rng.Below(kPieces));
        shadow[piece] = Entries(++version);
        ASSERT_TRUE(vlog_->AppendPiece(piece, shadow[piece]).ok());
      }
      // Aggressively reuse freed space: overwrite a random free block with junk, simulating
      // the VLD putting file data there. This is what makes stale map sectors disappear.
      for (int j = 0; j < 2; ++j) {
        const uint32_t block = static_cast<uint32_t>(rng.Below(space_->total_blocks()));
        if (space_->state(block) == BlockState::kFree) {
          std::vector<std::byte> junk(kBlockSectors * 512);
          for (auto& b : junk) {
            b = static_cast<std::byte>(rng.Next());
          }
          ASSERT_TRUE(disk_->InternalWrite(space_->BlockToLba(block), junk).ok());
        }
      }
    }

    const bool clean = rng.Chance(0.5);
    if (clean) {
      ASSERT_TRUE(vlog_->Park().ok());
    }
    Reopen();
    auto result = vlog_->Recover();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->used_scan, !clean) << "round " << round;
    for (uint32_t k = 0; k < kPieces; ++k) {
      ASSERT_EQ(result->pieces[k], shadow[k]) << "round " << round << " piece " << k
                                              << (clean ? " (park)" : " (scan)");
    }
    RemarkLiveBlocks();
    // Repair any uncovered pieces, as the VLD would.
    for (const uint32_t piece : result->uncovered_pieces) {
      ASSERT_TRUE(vlog_->AppendPiece(piece, shadow[piece]).ok());
    }
  }
}

TEST_F(VirtualLogTest, RecoveryCostIsProportionalToLiveLog) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(vlog_->AppendPiece(static_cast<uint32_t>(i) % kPieces, Entries(i)).ok());
  }
  ASSERT_TRUE(vlog_->Park().ok());
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  // Tail traversal touches roughly the live sectors (plus stale-but-valid stragglers), far
  // fewer than the 100 appends and vastly fewer than a disk scan.
  EXPECT_LT(result->sectors_read, 60u);
}


// Regression for the double-recycle hazard that breaks the paper's literal Figure 3b rule:
// with pieces a, b, c written in order, rewriting b twice recycles first W_b and then N_b —
// the sector whose bypass pointer was covering W_c. If both recycled blocks are physically
// reused, a naive implementation loses W_c (piece c's live sector). The designated-cover
// machinery must keep recovery correct regardless, including when the freed blocks are
// overwritten with garbage.
TEST_F(VirtualLogTest, DoubleRecycleOfBypassCarrierKeepsLogConnected) {
  ASSERT_TRUE(vlog_->AppendPiece(2, Entries(300)).ok());  // W_c (oldest, stays live).
  ASSERT_TRUE(vlog_->AppendPiece(1, Entries(301)).ok());  // W_b.
  ASSERT_TRUE(vlog_->AppendPiece(0, Entries(302)).ok());  // W_a.
  ASSERT_TRUE(vlog_->AppendPiece(1, Entries(303)).ok());  // N_b: bypass covers W_c, frees W_b.
  ASSERT_TRUE(vlog_->AppendPiece(1, Entries(304)).ok());  // N_b2: frees (or pins) N_b.
  // Destroy every freed block's contents, simulating data reuse.
  common::Rng rng(1);
  for (uint32_t block = 0; block < space_->total_blocks(); ++block) {
    if (space_->state(block) == BlockState::kFree) {
      std::vector<std::byte> junk(kBlockSectors * 512);
      for (auto& b : junk) {
        b = static_cast<std::byte>(rng.Next());
      }
      ASSERT_TRUE(disk_->InternalWrite(space_->BlockToLba(block), junk).ok());
    }
  }
  ASSERT_TRUE(vlog_->Park().ok());
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->used_scan);
  EXPECT_EQ(result->pieces[2], Entries(300)) << "W_c must stay reachable through covers";
  EXPECT_EQ(result->pieces[0], Entries(302));
  EXPECT_EQ(result->pieces[1], Entries(304));
}

// When a sector that still carries covers is obsoleted, it must be pinned (its block stays
// unallocatable) until its targets are re-covered — observable through PinnedCount.
TEST_F(VirtualLogTest, LoadBearingObsoleteSectorsArePinnedThenReleased) {
  ASSERT_TRUE(vlog_->AppendPiece(0, Entries(1)).ok());
  // The head sector of piece 0 is covered by the next append's prev pointer...
  ASSERT_TRUE(vlog_->AppendPiece(1, Entries(2)).ok());
  // ...so obsoleting piece 1 (the current head, which carries that cover) pins it.
  ASSERT_TRUE(vlog_->AppendPiece(1, Entries(3)).ok());
  const size_t pinned_after = vlog_->PinnedCount();
  // Rewriting piece 0 re-covers it with the new sector, unpinning the old carrier eventually.
  ASSERT_TRUE(vlog_->AppendPiece(0, Entries(4)).ok());
  ASSERT_TRUE(vlog_->AppendPiece(0, Entries(5)).ok());
  EXPECT_LE(vlog_->PinnedCount(), pinned_after + 1);
  // Regardless of pinning dynamics, recovery stays exact.
  ASSERT_TRUE(vlog_->Park().ok());
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pieces[0], Entries(5));
  EXPECT_EQ(result->pieces[1], Entries(3));
}

TEST_F(VirtualLogTest, AppendRejectsOutOfRangePiece) {
  EXPECT_FALSE(vlog_->AppendPiece(kPieces, Entries(0)).ok());
}

// Satellite (a) regression: map sectors from a previous format generation must not be
// resurrected by a crash scan after reformat, even though they are internally consistent.
TEST_F(VirtualLogTest, ReformatRejectsStaleGenerationSectorsInScan) {
  EXPECT_EQ(vlog_->Epoch(), 1u);
  ASSERT_TRUE(vlog_->AppendPiece(0, Entries(10)).ok());
  ASSERT_TRUE(vlog_->AppendPiece(4, Entries(11)).ok());
  // Sanity: a crash scan in the same generation finds them.
  Reopen();
  {
    auto result = vlog_->Recover();
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->used_scan);
    EXPECT_EQ(result->pieces[0], Entries(10));
  }
  // Reformat over the same media. The generation-1 map sectors still sit in the data region.
  Reopen();
  ASSERT_TRUE(vlog_->Format().ok());
  EXPECT_EQ(vlog_->Epoch(), 2u);
  // Crash immediately (no park, no appends): the scan walks the whole disk past the stale
  // generation-1 sectors and must reject every one of them.
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_scan);
  EXPECT_EQ(vlog_->Epoch(), 2u);
  for (const auto& piece : result->pieces) {
    EXPECT_TRUE(piece.empty());
  }
}

TEST_F(VirtualLogTest, EpochSurvivesParkAndCrashRecovery) {
  Reopen();
  ASSERT_TRUE(vlog_->Format().ok());
  Reopen();
  ASSERT_TRUE(vlog_->Format().ok());
  EXPECT_EQ(vlog_->Epoch(), 3u);
  ASSERT_TRUE(vlog_->AppendPiece(1, Entries(5)).ok());
  ASSERT_TRUE(vlog_->Park().ok());
  Reopen();
  ASSERT_TRUE(vlog_->Recover().ok());
  EXPECT_EQ(vlog_->Epoch(), 3u);
  RemarkLiveBlocks();
  // New appends in epoch 3 are found by a crash scan after a restart without park.
  ASSERT_TRUE(vlog_->AppendPiece(1, Entries(6)).ok());
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_scan);
  EXPECT_EQ(result->pieces[1], Entries(6));
}

// --- Packed group-commit transactions ---

TEST_F(VirtualLogTest, PackedTransactionUsesOneWritePerBlock) {
  std::vector<VirtualLog::PieceUpdate> updates;
  for (uint32_t k = 0; k < 5; ++k) {
    updates.push_back({.piece = k, .entries = Entries(30 + k)});
  }
  const uint64_t writes_before = disk_->stats().write_requests;
  ASSERT_TRUE(vlog_->AppendTransactionPacked(updates).ok());
  // Five sectors fit one 8-sector block: a single media write, versus five for the unpacked
  // transaction path.
  EXPECT_EQ(disk_->stats().write_requests - writes_before, 1u);
  EXPECT_EQ(vlog_->stats().packed_transactions, 1u);
  EXPECT_EQ(vlog_->stats().packed_sectors, 5u);

  ASSERT_TRUE(vlog_->Park().ok());
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  for (uint32_t k = 0; k < 5; ++k) {
    EXPECT_EQ(result->pieces[k], Entries(30 + k));
  }
}

TEST_F(VirtualLogTest, PackedTransactionSurvivesCrashScan) {
  ASSERT_TRUE(vlog_->AppendPiece(0, Entries(1)).ok());
  std::vector<VirtualLog::PieceUpdate> updates;
  for (uint32_t k = 0; k < kPieces; ++k) {
    updates.push_back({.piece = k, .entries = Entries(50 + k)});
  }
  ASSERT_TRUE(vlog_->AppendTransactionPacked(updates).ok());
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_scan);
  for (uint32_t k = 0; k < kPieces; ++k) {
    EXPECT_EQ(result->pieces[k], Entries(50 + k));
  }
}

TEST_F(VirtualLogTest, TornPackedTransactionRollsBackEveryPiece) {
  for (uint32_t k = 0; k < kPieces; ++k) {
    ASSERT_TRUE(vlog_->AppendPiece(k, Entries(k)).ok());
  }
  std::vector<VirtualLog::PieceUpdate> updates;
  for (uint32_t k = 0; k < kPieces; ++k) {
    updates.push_back({.piece = k, .entries = Entries(70 + k)});
  }
  // All six sectors pack into one 8-sector block write; tear it so only the first three
  // sectors persist.
  disk_->SetWriteFault(simdisk::SimDisk::WriteFault{
      .mode = simdisk::SimDisk::WriteFaultMode::kTornPrefix,
      .after_writes = 0,
      .keep_sectors = 3});
  EXPECT_FALSE(vlog_->AppendTransactionPacked(updates).ok());
  disk_->SetWriteFault(std::nullopt);
  Reopen();
  auto result = vlog_->Recover();
  ASSERT_TRUE(result.ok());
  // The trailing incomplete transaction is discarded: every piece rolls back to its
  // pre-transaction version.
  for (uint32_t k = 0; k < kPieces; ++k) {
    EXPECT_EQ(result->pieces[k], Entries(k)) << "piece " << k;
  }
}

TEST_F(VirtualLogTest, PackedTransactionRejectsDuplicatePieces) {
  std::vector<VirtualLog::PieceUpdate> updates;
  updates.push_back({.piece = 1, .entries = Entries(1)});
  updates.push_back({.piece = 1, .entries = Entries(2)});
  EXPECT_FALSE(vlog_->AppendTransactionPacked(updates).ok());
}

}  // namespace
}  // namespace vlog::core
