#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/models/analytic.h"
#include "src/models/track_sim.h"

namespace vlog::models {
namespace {

TEST(SingleTrack, MatchesClosedForm) {
  // Formula (1): (1-p)n / (1+pn). Spot values.
  EXPECT_NEAR(SingleTrackSkips(0.5, 100), 0.5 * 100 / 51.0, 1e-12);
  EXPECT_NEAR(SingleTrackSkips(0.2, 72), 0.8 * 72 / (1 + 0.2 * 72), 1e-12);
}

TEST(SingleTrack, ApproximatesUsedToFreeRatio) {
  // §2.1: the formula is roughly the ratio of occupied to free sectors; at 80% utilization
  // expect about a four-sector delay.
  EXPECT_NEAR(SingleTrackSkips(0.2, 256), 4.0, 0.35);
}

TEST(SingleTrack, MonotoneInFreeSpace) {
  double prev = 1e18;
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double v = SingleTrackSkips(p, 72);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(SingleTrack, AgreesWithMonteCarlo) {
  common::Rng rng(42);
  for (double p : {0.1, 0.3, 0.5, 0.8}) {
    const double model = SingleTrackSkips(p, 72);
    const double sim = SimulateSingleTrackSkips(p, 72, 40000, rng);
    EXPECT_NEAR(sim, model, 0.05 * model + 0.1) << "p=" << p;
  }
}

TEST(BlockSkips, MatchedBlockSizeIsBest) {
  // Appendix A.1: latency is lowest when the physical block size matches the logical size.
  const uint32_t n = 256;
  for (double p : {0.2, 0.5}) {
    const double matched = BlockSkips(p, n, 8, 8);
    for (uint32_t b : {1u, 2u, 4u}) {
      EXPECT_LT(matched, BlockSkips(p, n, 8, b)) << "p=" << p << " b=" << b;
    }
  }
}

TEST(BlockSkips, ReducesToSingleSectorForm) {
  EXPECT_NEAR(BlockSkips(0.3, 72, 1, 1), SingleTrackSkips(0.3, 72), 1e-12);
  // Eight independent single-sector searches.
  EXPECT_NEAR(BlockSkips(0.3, 72, 8, 1), 8 * SingleTrackSkips(0.3, 72), 1e-12);
}

TEST(SingleCylinder, NeverWorseThanSingleTrack) {
  // Having other tracks to choose from can only help. Formula (2)'s fx is geometric (like the
  // paper's), so the matching single-track baseline is E[x] = (1-p)/p.
  for (double p : {0.1, 0.3, 0.6}) {
    EXPECT_LE(SingleCylinderSkips(p, 72, 19, 12.0), (1.0 - p) / p + 1e-9);
  }
}

TEST(SingleCylinder, ReducesToSingleTrackWhenAlone) {
  EXPECT_NEAR(SingleCylinderSkips(0.4, 72, 1, 12.0), SingleTrackSkips(0.4, 72), 1e-9);
}

TEST(SingleCylinder, AgreesWithMonteCarlo) {
  common::Rng rng(7);
  // HP97560-like: head switch of 2.5 ms = 12 sectors at 208 us/sector.
  for (double p : {0.1, 0.3, 0.6}) {
    const double model = SingleCylinderSkips(p, 72, 19, 12.0);
    const double sim = SimulateCylinderSkips(p, 72, 19, 12.0, 20000, rng);
    EXPECT_NEAR(sim, model, 0.08 * model + 0.15) << "p=" << p;
  }
}

TEST(SingleCylinder, HeadSwitchMattersAtHighUtilization) {
  // With scarce free space the other tracks help despite the switch cost; latency must fall
  // well below the geometric single-track expectation (1-p)/p = 19 sectors at p = 0.05.
  const double cyl = SingleCylinderSkips(0.05, 72, 19, 12.0);
  EXPECT_LT(cyl, 0.95 / 0.05 / 2);
}

TEST(FillTrack, ExactSumMatchesIntegralApproximation) {
  for (uint32_t n : {72u, 256u}) {
    for (uint32_t m : {n / 10, n / 4, n / 2}) {
      const double exact = FillTrackSkipsExact(n, m);
      const double approx = (n + 1.0) * std::log((n + 2.0) / (m + 2.0)) - (n - m);
      EXPECT_NEAR(approx, exact, 0.05 * exact + 0.5) << "n=" << n << " m=" << m;
    }
  }
}

TEST(FillTrack, LatencyIsUShapedInThreshold) {
  // Figure 2: too-frequent switches pay the switch cost; too-rare switches pay crowded-track
  // rotational delays. The optimum is interior.
  const auto hp_switch = common::Milliseconds(2.5);
  const auto hp_sector = common::Milliseconds(14.992 / 72);
  const common::Duration high = FillTrackLatency(72, 64, hp_switch, hp_sector);  // Switch often.
  const common::Duration low = FillTrackLatency(72, 1, hp_switch, hp_sector);    // Fill full.
  common::Duration best = std::min(high, low);
  bool interior_better = false;
  for (uint32_t m = 2; m < 64; ++m) {
    if (FillTrackLatency(72, m, hp_switch, hp_sector) < best) {
      interior_better = true;
      break;
    }
  }
  EXPECT_TRUE(interior_better);
}

TEST(FillTrack, ModelTracksSimulation) {
  common::Rng rng(99);
  const double switch_sectors = 12.0;
  for (uint32_t m : {4u, 8u, 18u, 36u}) {
    const double sim = SimulateFillTrack(72, m, switch_sectors, 4000, rng);
    const double skips =
        (72 + 1.0) * std::log((72 + 2.0) / (m + 2.0)) - (72.0 - m) + NonRandomnessCorrection(72, m);
    const double model = (switch_sectors + skips) / (72.0 - m);
    EXPECT_NEAR(sim, model, 0.25 * model + 0.3) << "m=" << m;
  }
}

TEST(HalfRotation, Baseline) {
  EXPECT_EQ(HalfRotation(common::Milliseconds(6.0)), common::Milliseconds(3.0));
}

TEST(TechnologyTrend, SeagateLocatesTenTimesFaster) {
  // Figure 1's headline: nearly an order of magnitude improvement from HP97560 to ST19101 at
  // equal utilization, because locate time scales with platter bandwidth.
  const double hp_ms = SingleCylinderSkips(0.3, 72, 19, 12.0) * 14.992 / 72;
  const double st_ms = SingleCylinderSkips(0.3, 256, 16, 21.0) * 6.0 / 256;
  EXPECT_GT(hp_ms / st_ms, 5.0);
}

}  // namespace
}  // namespace vlog::models
