#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/vld.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::core {
namespace {

constexpr size_t kBlockBytes = 4096;

std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 131 + i * 7));
  }
  return v;
}

class VldTest : public ::testing::Test {
 protected:
  VldTest() { Reset(); }

  void Reset(VldConfig config = {}) {
    config_ = config;
    clock_ = common::Clock();
    disk_ = std::make_unique<simdisk::SimDisk>(simdisk::Truncated(simdisk::SeagateSt19101(), 3),
                                               &clock_);
    vld_ = std::make_unique<Vld>(disk_.get(), config_);
    ASSERT_TRUE(vld_->Format().ok());
  }

  // Simulates a restart over the same media.
  void Reopen() { vld_ = std::make_unique<Vld>(disk_.get(), config_); }

  VldConfig config_;
  common::Clock clock_;
  std::unique_ptr<simdisk::SimDisk> disk_;
  std::unique_ptr<Vld> vld_;
};

TEST_F(VldTest, ExportsSmallerLogicalSpace) {
  EXPECT_LT(vld_->SectorCount(), disk_->SectorCount());
  EXPECT_GT(vld_->SectorCount(), disk_->SectorCount() * 9 / 10);
  EXPECT_EQ(vld_->SectorBytes(), 512u);
}

TEST_F(VldTest, WriteReadRoundTripBlockAligned) {
  const auto data = Pattern(kBlockBytes, 1);
  ASSERT_TRUE(vld_->Write(0, data).ok());
  std::vector<std::byte> out(kBlockBytes);
  ASSERT_TRUE(vld_->Read(0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(VldTest, WriteReadMultiBlock) {
  const auto data = Pattern(kBlockBytes * 5, 2);
  ASSERT_TRUE(vld_->Write(64, data).ok());
  std::vector<std::byte> out(kBlockBytes * 5);
  ASSERT_TRUE(vld_->Read(64, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(VldTest, SubBlockWriteMergesWithExisting) {
  ASSERT_TRUE(vld_->Write(0, Pattern(kBlockBytes, 3)).ok());
  const auto small = Pattern(512, 4);
  ASSERT_TRUE(vld_->Write(2, small).ok());  // One sector inside the block.
  std::vector<std::byte> out(kBlockBytes);
  ASSERT_TRUE(vld_->Read(0, out).ok());
  auto expect = Pattern(kBlockBytes, 3);
  std::memcpy(expect.data() + 2 * 512, small.data(), 512);
  EXPECT_EQ(out, expect);
  EXPECT_GE(vld_->stats().read_modify_writes, 1u);
}

TEST_F(VldTest, UnalignedSpanningWrite) {
  const auto data = Pattern(512 * 12, 5);  // Sectors 5..16: spans three blocks, ragged edges.
  ASSERT_TRUE(vld_->Write(5, data).ok());
  std::vector<std::byte> out(512 * 12);
  ASSERT_TRUE(vld_->Read(5, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(VldTest, UnmappedReadsReturnZeros) {
  std::vector<std::byte> out(kBlockBytes, std::byte{0xFF});
  ASSERT_TRUE(vld_->Read(800, out).ok());
  EXPECT_EQ(out, std::vector<std::byte>(kBlockBytes));
  EXPECT_GE(vld_->stats().unmapped_reads, 1u);
}

TEST_F(VldTest, OverwriteMonitoringFreesOldBlocks) {
  const uint64_t baseline = vld_->space().live_blocks();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(vld_->Write(0, Pattern(kBlockBytes, i)).ok());
  }
  // One data block + one live map sector regardless of 50 overwrites (plus pinned slack).
  EXPECT_LE(vld_->space().live_blocks(), baseline + 2 + vld_->vlog().PinnedCount());
}

TEST_F(VldTest, RejectsBadRanges) {
  EXPECT_FALSE(vld_->Write(vld_->SectorCount(), Pattern(512, 0)).ok());
  std::vector<std::byte> out(100);
  EXPECT_FALSE(vld_->Read(0, out).ok());
}

TEST_F(VldTest, EagerWriteIsFasterThanHalfRotation) {
  // Prime the head position.
  ASSERT_TRUE(vld_->Write(0, Pattern(kBlockBytes, 0)).ok());
  const auto start = clock_.Now();
  ASSERT_TRUE(vld_->Write(8, Pattern(kBlockBytes, 1)).ok());
  const auto latency = clock_.Now() - start;
  // SCSI 0.1ms + locate (tiny) + 2 transfers (4KB data + map sector). Half rotation alone
  // would be 3 ms.
  EXPECT_LT(latency, common::Milliseconds(1.5));
}

TEST_F(VldTest, ParkRecoverPreservesData) {
  std::vector<std::pair<simdisk::Lba, std::vector<std::byte>>> writes;
  common::Rng rng(17);
  for (int i = 0; i < 40; ++i) {
    const simdisk::Lba lba = rng.Below(vld_->SectorCount() / 8) * 8;
    auto data = Pattern(kBlockBytes, 100 + i);
    ASSERT_TRUE(vld_->Write(lba, data).ok());
    writes.emplace_back(lba, std::move(data));
  }
  ASSERT_TRUE(vld_->Park().ok());
  Reopen();
  auto info = vld_->Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->used_scan);
  for (auto it = writes.rbegin(); it != writes.rend(); ++it) {
    std::vector<std::byte> out(kBlockBytes);
    ASSERT_TRUE(vld_->Read(it->first, out).ok());
    // Later writes may have overwritten earlier ones at the same LBA; check only latest.
    bool is_latest = true;
    for (auto later = writes.rbegin(); later != it; ++later) {
      is_latest &= later->first != it->first;
    }
    if (is_latest) {
      EXPECT_EQ(out, it->second) << "lba " << it->first;
    }
  }
}

TEST_F(VldTest, CrashRecoveryViaScanPreservesCommittedWrites) {
  ASSERT_TRUE(vld_->Write(16, Pattern(kBlockBytes, 6)).ok());
  ASSERT_TRUE(vld_->Write(24, Pattern(kBlockBytes, 7)).ok());
  Reopen();  // No park.
  auto info = vld_->Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->used_scan);
  std::vector<std::byte> out(kBlockBytes);
  ASSERT_TRUE(vld_->Read(16, out).ok());
  EXPECT_EQ(out, Pattern(kBlockBytes, 6));
  ASSERT_TRUE(vld_->Read(24, out).ok());
  EXPECT_EQ(out, Pattern(kBlockBytes, 7));
}

TEST_F(VldTest, WriteAtomicAllOrNothing) {
  ASSERT_TRUE(vld_->Write(0, Pattern(kBlockBytes, 1)).ok());
  // A multi-extent atomic write far enough apart to touch two map pieces.
  const simdisk::Lba second = (vld_->logical_blocks() - 4) / 8 * 8 * 8;
  ASSERT_TRUE(vld_->Write(second, Pattern(kBlockBytes, 2)).ok());

  const auto a = Pattern(kBlockBytes, 10);
  const auto b = Pattern(kBlockBytes, 11);
  std::vector<Vld::AtomicWrite> writes;
  writes.push_back({0, a});
  writes.push_back({second, b});
  ASSERT_TRUE(vld_->WriteAtomic(writes).ok());
  std::vector<std::byte> out(kBlockBytes);
  ASSERT_TRUE(vld_->Read(0, out).ok());
  EXPECT_EQ(out, a);
  ASSERT_TRUE(vld_->Read(second, out).ok());
  EXPECT_EQ(out, b);
}

TEST_F(VldTest, InterruptedAtomicWriteRollsBack) {
  ASSERT_TRUE(vld_->Write(0, Pattern(kBlockBytes, 1)).ok());
  const simdisk::Lba second = (vld_->logical_blocks() - 4) / 8 * 8 * 8;
  ASSERT_TRUE(vld_->Write(second, Pattern(kBlockBytes, 2)).ok());

  // Fail after the two data blocks and the first of two map sectors are durable.
  disk_->SetWriteFailureAfter(3);
  std::vector<Vld::AtomicWrite> writes;
  const auto a = Pattern(kBlockBytes, 10);
  const auto b = Pattern(kBlockBytes, 11);
  writes.push_back({0, a});
  writes.push_back({second, b});
  EXPECT_FALSE(vld_->WriteAtomic(writes).ok());
  disk_->SetWriteFailureAfter(std::nullopt);

  Reopen();
  auto info = vld_->Recover();
  ASSERT_TRUE(info.ok());
  std::vector<std::byte> out(kBlockBytes);
  ASSERT_TRUE(vld_->Read(0, out).ok());
  EXPECT_EQ(out, Pattern(kBlockBytes, 1)) << "partial transaction must roll back";
  ASSERT_TRUE(vld_->Read(second, out).ok());
  EXPECT_EQ(out, Pattern(kBlockBytes, 2));
}

TEST_F(VldTest, TrimFreesBlocks) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(vld_->Write(i * 8, Pattern(kBlockBytes, i)).ok());
  }
  const uint64_t live = vld_->space().live_blocks();
  ASSERT_TRUE(vld_->Trim(0, 40).ok());  // Blocks 0..4.
  EXPECT_EQ(vld_->stats().trims, 5u);
  EXPECT_LE(vld_->space().live_blocks(), live - 5 + 1);  // -5 data, +<=1 map churn.
  std::vector<std::byte> out(kBlockBytes);
  ASSERT_TRUE(vld_->Read(0, out).ok());
  EXPECT_EQ(out, std::vector<std::byte>(kBlockBytes));  // Trimmed reads as zeros.
  ASSERT_TRUE(vld_->Read(5 * 8, out).ok());
  EXPECT_EQ(out, Pattern(kBlockBytes, 5));  // Untrimmed survives.
}

TEST_F(VldTest, TrimSurvivesRecovery) {
  ASSERT_TRUE(vld_->Write(0, Pattern(kBlockBytes, 9)).ok());
  ASSERT_TRUE(vld_->Trim(0, 8).ok());
  ASSERT_TRUE(vld_->Park().ok());
  Reopen();
  ASSERT_TRUE(vld_->Recover().ok());
  std::vector<std::byte> out(kBlockBytes);
  ASSERT_TRUE(vld_->Read(0, out).ok());
  EXPECT_EQ(out, std::vector<std::byte>(kBlockBytes));
}

TEST_F(VldTest, CompactorCreatesEmptyTracksDuringIdle) {
  // Fill a swath of the disk, then punch holes so tracks are partially utilized.
  const uint32_t blocks = vld_->logical_blocks() * 3 / 4;
  for (uint32_t b = 0; b < blocks; ++b) {
    ASSERT_TRUE(vld_->Write(static_cast<simdisk::Lba>(b) * 8, Pattern(kBlockBytes, b)).ok());
  }
  common::Rng rng(5);
  for (uint32_t b = 0; b < blocks; b += 2) {
    ASSERT_TRUE(vld_->Trim(static_cast<simdisk::Lba>(b) * 8, 8).ok());
  }
  auto empty_tracks = [&] {
    uint64_t n = 0;
    for (uint64_t t = 0; t < vld_->space().total_tracks(); ++t) {
      n += vld_->space().TrackEmpty(t) ? 1 : 0;
    }
    return n;
  };
  const uint64_t before = empty_tracks();
  vld_->RunIdle(common::Seconds(2));
  EXPECT_GT(empty_tracks(), before);
  EXPECT_GT(vld_->compactor().stats().tracks_compacted, 0u);
  // Compaction must preserve every surviving block's contents.
  std::vector<std::byte> out(kBlockBytes);
  for (uint32_t b = 1; b < blocks; b += 2) {
    ASSERT_TRUE(vld_->Read(static_cast<simdisk::Lba>(b) * 8, out).ok());
    ASSERT_EQ(out, Pattern(kBlockBytes, b)) << "block " << b;
  }
}

TEST_F(VldTest, CompactionSurvivesRecovery) {
  const uint32_t blocks = vld_->logical_blocks() / 2;
  for (uint32_t b = 0; b < blocks; ++b) {
    ASSERT_TRUE(vld_->Write(static_cast<simdisk::Lba>(b) * 8, Pattern(kBlockBytes, b)).ok());
  }
  for (uint32_t b = 0; b < blocks; b += 3) {
    ASSERT_TRUE(vld_->Trim(static_cast<simdisk::Lba>(b) * 8, 8).ok());
  }
  vld_->RunIdle(common::Seconds(1));
  Reopen();  // Crash right after compaction.
  ASSERT_TRUE(vld_->Recover().ok());
  std::vector<std::byte> out(kBlockBytes);
  for (uint32_t b = 0; b < blocks; ++b) {
    ASSERT_TRUE(vld_->Read(static_cast<simdisk::Lba>(b) * 8, out).ok());
    if (b % 3 == 0) {
      ASSERT_EQ(out, std::vector<std::byte>(kBlockBytes)) << "block " << b;
    } else {
      ASSERT_EQ(out, Pattern(kBlockBytes, b)) << "block " << b;
    }
  }
}

TEST_F(VldTest, CheckpointShrinksRecoveryWork) {
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(vld_->Write((i % 30) * 8, Pattern(kBlockBytes, i)).ok());
  }
  ASSERT_TRUE(vld_->Checkpoint().ok());
  ASSERT_TRUE(vld_->Write(0, Pattern(kBlockBytes, 999)).ok());
  ASSERT_TRUE(vld_->Park().ok());
  Reopen();
  auto info = vld_->Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->from_checkpoint);
  EXPECT_LE(info->log_sectors_read, 5u);
  std::vector<std::byte> out(kBlockBytes);
  ASSERT_TRUE(vld_->Read(0, out).ok());
  EXPECT_EQ(out, Pattern(kBlockBytes, 999));
  ASSERT_TRUE(vld_->Read(8, out).ok());
  EXPECT_EQ(out, Pattern(kBlockBytes, 31));
}

// Property test: random block writes, trims, idle compaction, and crashes (parked or not) must
// always read back exactly what a shadow byte array says.
TEST_F(VldTest, RandomizedWorkloadWithCrashesMatchesShadow) {
  common::Rng rng(424242);
  const uint32_t blocks = vld_->logical_blocks();
  std::vector<std::vector<std::byte>> shadow(blocks);  // Empty = unwritten/trimmed.
  uint32_t version = 0;

  for (int round = 0; round < 8; ++round) {
    const int ops = 20 + static_cast<int>(rng.Below(60));
    for (int i = 0; i < ops; ++i) {
      const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
      const double dice = rng.NextDouble();
      if (dice < 0.70) {
        auto data = Pattern(kBlockBytes, ++version);
        ASSERT_TRUE(vld_->Write(static_cast<simdisk::Lba>(b) * 8, data).ok());
        shadow[b] = std::move(data);
      } else if (dice < 0.85) {
        ASSERT_TRUE(vld_->Trim(static_cast<simdisk::Lba>(b) * 8, 8).ok());
        shadow[b].clear();
      } else {
        vld_->RunIdle(common::Milliseconds(50));
      }
    }
    const bool clean = rng.Chance(0.5);
    if (clean) {
      ASSERT_TRUE(vld_->Park().ok());
    }
    Reopen();
    auto info = vld_->Recover();
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info->used_scan, !clean);
    std::vector<std::byte> out(kBlockBytes);
    for (uint32_t b = 0; b < blocks; ++b) {
      ASSERT_TRUE(vld_->Read(static_cast<simdisk::Lba>(b) * 8, out).ok());
      if (shadow[b].empty()) {
        ASSERT_EQ(out, std::vector<std::byte>(kBlockBytes)) << "round " << round << " b " << b;
      } else {
        ASSERT_EQ(out, shadow[b]) << "round " << round << " block " << b;
      }
    }
  }
}

// --- Queued write engine (SubmitWrite / FlushQueue) ---

// A single queued write must cost exactly what the synchronous path costs: same clock advance,
// same readback. This is the depth-1 identity the tier-1 numbers rely on.
TEST_F(VldTest, QueuedDepthOneLatencyMatchesSyncWrite) {
  const auto data = Pattern(kBlockBytes, 42);

  ASSERT_TRUE(vld_->Write(640, Pattern(kBlockBytes, 1)).ok());
  const common::Time sync_start = clock_.Now();
  ASSERT_TRUE(vld_->Write(800, data).ok());
  const common::Duration sync_cost = clock_.Now() - sync_start;

  // Re-run on a fresh device with the same warm-up so the arm starts identically.
  Reset(config_);
  ASSERT_TRUE(vld_->Write(640, Pattern(kBlockBytes, 1)).ok());
  const common::Time q_start = clock_.Now();
  ASSERT_TRUE(vld_->SubmitWrite(800, data).ok());
  auto done = vld_->FlushQueue();
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 1u);
  EXPECT_EQ(clock_.Now() - q_start, sync_cost);
  EXPECT_EQ((*done)[0].Latency(), sync_cost);

  std::vector<std::byte> out(kBlockBytes);
  ASSERT_TRUE(vld_->Read(800, out).ok());
  EXPECT_EQ(out, data);
}

// A full queue's map entries commit in one packed transaction: 8 requests cost 8 data-block
// writes plus a single one-block log write, versus 16 media writes synchronously.
TEST_F(VldTest, GroupCommitUsesFewerLogWrites) {
  const uint64_t before_sync = disk_->stats().write_requests;
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(vld_->Write(i * 8, Pattern(kBlockBytes, i)).ok());
  }
  const uint64_t sync_writes = disk_->stats().write_requests - before_sync;

  Reset(config_);
  const uint64_t before_q = disk_->stats().write_requests;
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(vld_->SubmitWrite(i * 8, Pattern(kBlockBytes, i)).ok());
  }
  auto done = vld_->FlushQueue();
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 8u);
  const uint64_t queued_writes = disk_->stats().write_requests - before_q;

  EXPECT_EQ(sync_writes, 16u);   // Per request: data block + map sector.
  EXPECT_EQ(queued_writes, 9u);  // 8 data blocks + one packed log block.
  EXPECT_EQ(vld_->stats().group_commits, 1u);
  EXPECT_EQ(vld_->stats().queued_writes, 8u);
  EXPECT_EQ(vld_->stats().host_writes, 8u);

  std::vector<std::byte> out(kBlockBytes);
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(vld_->Read(i * 8, out).ok());
    EXPECT_EQ(out, Pattern(kBlockBytes, i));
  }
}

TEST_F(VldTest, SubmitWriteRejectsWhenQueueFull) {
  for (uint32_t i = 0; i < vld_->queue_depth(); ++i) {
    ASSERT_TRUE(vld_->SubmitWrite(i * 8, Pattern(kBlockBytes, i)).ok());
  }
  auto overflow = vld_->SubmitWrite(512, Pattern(kBlockBytes, 99));
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), common::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(vld_->FlushQueue().ok());
  EXPECT_EQ(vld_->QueuedWrites(), 0u);
  EXPECT_TRUE(vld_->SubmitWrite(512, Pattern(kBlockBytes, 99)).ok());
}

TEST_F(VldTest, FlushEmptyQueueIsFreeNoOp) {
  const common::Time before = clock_.Now();
  auto done = vld_->FlushQueue();
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->empty());
  EXPECT_EQ(clock_.Now(), before);
}

TEST_F(VldTest, QueuedCompletionsShareGroupCommitTimestamp) {
  const common::Time base = clock_.Now();
  for (uint32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(vld_->SubmitWrite(i * 8, Pattern(kBlockBytes, i)).ok());
    clock_.Advance(common::Milliseconds(1));  // Stagger the arrivals.
  }
  auto done = vld_->FlushQueue();
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 6u);
  for (size_t i = 0; i < done->size(); ++i) {
    // Every request is acknowledged only when the shared map commit is durable.
    EXPECT_EQ((*done)[i].complete_time, (*done)[0].complete_time);
    EXPECT_EQ((*done)[i].submit_time, base + common::Milliseconds(1) * static_cast<int64_t>(i));
    EXPECT_GT((*done)[i].Latency(), 0);
  }
}

TEST_F(VldTest, QueuedBatchSurvivesCrashScan) {
  ASSERT_TRUE(vld_->Write(0, Pattern(kBlockBytes, 1)).ok());
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(vld_->SubmitWrite(64 + i * 8, Pattern(kBlockBytes, 20 + i)).ok());
  }
  ASSERT_TRUE(vld_->FlushQueue().ok());
  Reopen();  // Crash: no park.
  auto info = vld_->Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->used_scan);
  std::vector<std::byte> out(kBlockBytes);
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(vld_->Read(64 + i * 8, out).ok());
    EXPECT_EQ(out, Pattern(kBlockBytes, 20 + i)) << "queued write " << i;
  }
}

// Tear the packed map-block write: none of the batch's requests may be half-visible — the
// whole group rolls back (it was never acknowledged). The batch's blocks are spaced one map
// piece apart (kEntriesPerSector blocks) so its 8 map sectors genuinely pack into one
// multi-sector (tearable) block write.
TEST_F(VldTest, TornGroupCommitRollsBackWholeBatch) {
  auto lba_of = [](uint32_t i) {
    return static_cast<simdisk::Lba>(i) * (kEntriesPerSector + 6) * 8;
  };
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(vld_->Write(lba_of(i), Pattern(kBlockBytes, i)).ok());
  }
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(vld_->SubmitWrite(lba_of(i), Pattern(kBlockBytes, 40 + i)).ok());
  }
  // 8 data-block writes succeed, then the single packed log write tears mid-block.
  disk_->SetWriteFault(simdisk::SimDisk::WriteFault{
      .mode = simdisk::SimDisk::WriteFaultMode::kTornPrefix,
      .after_writes = 8,
      .keep_sectors = 3});
  EXPECT_FALSE(vld_->FlushQueue().ok());
  disk_->SetWriteFault(std::nullopt);
  Reopen();
  auto info = vld_->Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->discarded_txn_sectors, 1u);
  std::vector<std::byte> out(kBlockBytes);
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(vld_->Read(lba_of(i), out).ok());
    EXPECT_EQ(out, Pattern(kBlockBytes, i)) << "block " << i << " must keep its old version";
  }
}

}  // namespace
}  // namespace vlog::core
