#include "src/simdisk/request_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::simdisk {
namespace {

constexpr size_t kBlockBytes = 4096;

std::vector<std::byte> Pattern(uint32_t seed) {
  std::vector<std::byte> v(kBlockBytes);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 131 + i * 7));
  }
  return v;
}

// Submits block writes at `lbas` all at time zero, drains under `policy`, and returns the
// total simulated time. The request set and disk state are identical across policies, so the
// difference is purely scheduling.
common::Time DrainAll(SchedulerPolicy policy, const std::vector<Lba>& lbas) {
  common::Clock clock;
  SimDisk disk(Hp97560(), &clock);
  RequestQueue queue(&disk, {.depth = 32, .policy = policy});
  for (size_t i = 0; i < lbas.size(); ++i) {
    EXPECT_TRUE(queue.SubmitWrite(lbas[i], Pattern(static_cast<uint32_t>(i))).ok());
  }
  auto done = queue.Drain();
  EXPECT_TRUE(done.ok());
  EXPECT_EQ(done->size(), lbas.size());
  for (const IoCompletion& c : *done) {
    EXPECT_TRUE(c.status.ok());
  }
  return clock.Now();
}

// A request set that ping-pongs between the outer and inner cylinders: pessimal for FCFS,
// trivially clustered by a positional scheduler.
std::vector<Lba> PingPongLbas(const DiskGeometry& geometry) {
  std::vector<Lba> lbas;
  const uint32_t far = geometry.cylinders - 100;
  for (uint32_t i = 0; i < 4; ++i) {
    lbas.push_back(geometry.ToLba({.cylinder = i * 8, .head = 0, .sector = 0}));
    lbas.push_back(geometry.ToLba({.cylinder = far + i * 8, .head = 0, .sector = 0}));
  }
  return lbas;
}

TEST(RequestQueueTest, FcfsServicesInSubmissionOrder) {
  common::Clock clock;
  SimDisk disk(Hp97560(), &clock);
  RequestQueue queue(&disk, {.depth = 8, .policy = SchedulerPolicy::kFcfs});
  const std::vector<Lba> lbas = PingPongLbas(disk.geometry());
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < lbas.size(); ++i) {
    auto id = queue.SubmitWrite(lbas[i], Pattern(static_cast<uint32_t>(i)));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  auto done = queue.Drain();
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ((*done)[i].id, ids[i]);
  }
}

// Satellite (d): on a known request set, SPTF must finish in strictly lower simulated time
// than FCFS. Both drains see the same requests submitted at the same instant on identical
// disks, so the comparison is deterministic.
TEST(RequestQueueTest, SptfStrictlyFasterThanFcfsOnPingPongSet) {
  common::Clock probe_clock;
  SimDisk probe(Hp97560(), &probe_clock);
  const std::vector<Lba> lbas = PingPongLbas(probe.geometry());

  const common::Time fcfs = DrainAll(SchedulerPolicy::kFcfs, lbas);
  const common::Time sptf = DrainAll(SchedulerPolicy::kSptf, lbas);
  EXPECT_LT(sptf, fcfs);
  // The ping-pong set forces FCFS through seven long seeks; SPTF clusters the two cylinder
  // groups and should save well over a millisecond per avoided long seek.
  EXPECT_LT(sptf, fcfs - common::Milliseconds(5));
}

// SPTF tie-break determinism: requests with identical positioning cost (same LBA) must be
// serviced oldest-first, so equal-cost scheduling is FIFO rather than submission-set dependent.
TEST(RequestQueueTest, SptfTieBreaksTowardOlderRequest) {
  auto run = [] {
    common::Clock clock;
    SimDisk disk(Hp97560(), &clock);
    const DiskGeometry& geometry = disk.geometry();
    const Lba near = geometry.ToLba({.cylinder = 0, .head = 0, .sector = 0});
    const Lba far = geometry.ToLba({.cylinder = geometry.cylinders - 1, .head = 0, .sector = 0});
    RequestQueue queue(&disk, {.depth = 8, .policy = SchedulerPolicy::kSptf});
    // Three equal-cost requests (same LBA) interleaved with a far one.
    std::vector<uint64_t> tied;
    tied.push_back(*queue.SubmitWrite(near, Pattern(1)));
    EXPECT_TRUE(queue.SubmitWrite(far, Pattern(2)).ok());
    tied.push_back(*queue.SubmitWrite(near, Pattern(3)));
    tied.push_back(*queue.SubmitWrite(near, Pattern(4)));
    auto done = queue.Drain();
    EXPECT_TRUE(done.ok());
    std::vector<uint64_t> order;
    for (const IoCompletion& c : *done) {
      order.push_back(c.id);
    }
    return std::make_pair(order, tied);
  };

  const auto [order, tied] = run();
  std::vector<uint64_t> tied_in_service_order;
  for (const uint64_t id : order) {
    if (std::find(tied.begin(), tied.end(), id) != tied.end()) {
      tied_in_service_order.push_back(id);
    }
  }
  EXPECT_EQ(tied_in_service_order, tied)
      << "equal-cost requests must retain FIFO order under SPTF";
  // And the whole schedule is a pure function of the request set: a second identical run must
  // produce the identical service order.
  const auto [order2, tied2] = run();
  EXPECT_EQ(order, order2);
}

TEST(RequestQueueTest, DepthLimitEnforced) {
  common::Clock clock;
  SimDisk disk(Hp97560(), &clock);
  RequestQueue queue(&disk, {.depth = 2, .policy = SchedulerPolicy::kFcfs});
  ASSERT_TRUE(queue.SubmitWrite(0, Pattern(0)).ok());
  ASSERT_TRUE(queue.SubmitWrite(8, Pattern(1)).ok());
  EXPECT_FALSE(queue.CanSubmit());
  auto overflow = queue.SubmitWrite(16, Pattern(2));
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), common::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(queue.ServiceOne().ok());
  EXPECT_TRUE(queue.CanSubmit());
  ASSERT_TRUE(queue.SubmitWrite(16, Pattern(2)).ok());
  ASSERT_TRUE(queue.Drain().ok());
  EXPECT_EQ(queue.Pending(), 0u);
}

// With one outstanding request the queued path must charge exactly the synchronous cost: same
// clock advance, same media contents.
TEST(RequestQueueTest, DepthOneMatchesSynchronousWrite) {
  const auto data = Pattern(7);
  const Lba lba = 1234;

  common::Clock sync_clock;
  SimDisk sync_disk(Hp97560(), &sync_clock);
  ASSERT_TRUE(sync_disk.Write(lba, data).ok());
  const common::Time sync_done = sync_clock.Now();

  common::Clock q_clock;
  SimDisk q_disk(Hp97560(), &q_clock);
  RequestQueue queue(&q_disk, {.depth = 1, .policy = SchedulerPolicy::kSptf});
  ASSERT_TRUE(queue.SubmitWrite(lba, data).ok());
  auto done = queue.ServiceOne();
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(q_clock.Now(), sync_done);
  EXPECT_EQ(done->complete_time, sync_done);

  std::vector<std::byte> sync_media(kBlockBytes), q_media(kBlockBytes);
  sync_disk.PeekMedia(lba, sync_media);
  q_disk.PeekMedia(lba, q_media);
  EXPECT_EQ(sync_media, q_media);
}

// A full queue pipelines controller overhead behind media work, so draining N requests must be
// cheaper than issuing the same N writes synchronously.
TEST(RequestQueueTest, QueuedWritesCheaperThanSynchronous) {
  std::vector<Lba> lbas;
  for (uint32_t i = 0; i < 8; ++i) {
    lbas.push_back(i * 8);
  }

  common::Clock sync_clock;
  SimDisk sync_disk(Hp97560(), &sync_clock);
  for (size_t i = 0; i < lbas.size(); ++i) {
    ASSERT_TRUE(sync_disk.Write(lbas[i], Pattern(static_cast<uint32_t>(i))).ok());
  }
  const common::Time sync_done = sync_clock.Now();

  const common::Time queued_done = DrainAll(SchedulerPolicy::kFcfs, lbas);
  EXPECT_LT(queued_done, sync_done);
}

// Finds a write start on cylinder 1 whose positional cost is the track's maximum (the head's
// projected angle just passed it), so sectors a little further along the track are almost a
// full rotation cheaper. That cost gap is what lets these tests force a specific SPTF choice
// deterministically: same cylinder, so seek time is identical and only rotation differs.
Lba ExpensiveTrackSector(const SimDisk& disk, uint64_t* cheap_offset) {
  const DiskGeometry& geometry = disk.geometry();
  const Lba track = geometry.ToLba({.cylinder = 1, .head = 0, .sector = 0});
  Lba worst = track;
  common::Duration worst_cost = 0;
  for (uint32_t s = 0; s + 16 < geometry.sectors_per_track; ++s) {
    const common::Duration cost = disk.EstimatePosition(track + s, 0);
    if (cost > worst_cost) {
      worst = track + s;
      worst_cost = cost;
    }
  }
  // The cheapest sector strictly inside (worst, worst + 8): rotationally just past the head.
  *cheap_offset = 1;
  common::Duration best_cost = disk.EstimatePosition(worst + 1, 0);
  for (uint64_t k = 2; k < 8; ++k) {
    const common::Duration cost = disk.EstimatePosition(worst + k, 0);
    if (cost < best_cost) {
      *cheap_offset = k;
      best_cost = cost;
    }
  }
  EXPECT_LT(best_cost, worst_cost) << "the track must offer a rotationally cheaper sector";
  return worst;
}

// Satellite (b): partial-overlap RAW forwarding. The read starts at a rotationally cheap
// sector inside a pending write's extent, so SPTF provably services it while the write is
// still queued — the overlapping sectors must come from the pending payload, the tail from
// the media.
TEST(RequestQueueTest, ReadForwardsPartialOverlapFromOlderPendingWrite) {
  common::Clock clock;
  SimDisk disk(Hp97560(), &clock);
  uint64_t cheap = 0;
  const Lba w = ExpensiveTrackSector(disk, &cheap);
  const auto media = Pattern(3);  // 8 sectors of pre-existing media under the read tail.
  disk.PokeMedia(w + 8, media);
  const auto payload = Pattern(7);  // The pending 8-sector write [w, w+8).

  RequestQueue queue(&disk, {.depth = 4, .policy = SchedulerPolicy::kSptf});
  ASSERT_TRUE(queue.SubmitWrite(w, payload).ok());
  auto read_id = queue.SubmitRead(w + cheap, 8);  // Overlap [w+cheap, w+8), tail off media.
  ASSERT_TRUE(read_id.ok());

  auto first = queue.ServiceOne();
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->id, *read_id) << "the rotationally cheaper read must be serviced first";
  const uint64_t overlap = 8 - cheap;
  EXPECT_EQ(first->forwarded_sectors, overlap);
  EXPECT_EQ(std::memcmp(first->data.data(), payload.data() + cheap * 512, overlap * 512), 0)
      << "overlapping sectors must be forwarded from the pending write payload";
  EXPECT_EQ(std::memcmp(first->data.data() + overlap * 512, media.data(), cheap * 512), 0)
      << "the non-overlapping tail must come from the media";

  auto second = queue.ServiceOne();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->is_write);
  std::vector<std::byte> on_media(kBlockBytes);
  disk.PeekMedia(w, on_media);
  EXPECT_EQ(on_media, payload) << "the forwarded-from write must still reach the media";
}

// WAR hazard: a newer write may not be reordered past an older overlapping read, even when
// its position is cheaper — the read must be serviced first and see the pre-write media.
// Without overlap the same cheaper write does jump ahead, proving the hazard check (not the
// scheduler) is what held it back.
TEST(RequestQueueTest, WriteMayNotPassOlderOverlappingRead) {
  uint64_t cheap = 0;
  {
    common::Clock clock;
    SimDisk disk(Hp97560(), &clock);
    const Lba r = ExpensiveTrackSector(disk, &cheap);
    const auto media = Pattern(5);
    disk.PokeMedia(r, media);
    RequestQueue queue(&disk, {.depth = 4, .policy = SchedulerPolicy::kSptf});
    auto read_id = queue.SubmitRead(r, 8);
    ASSERT_TRUE(read_id.ok());
    ASSERT_TRUE(queue.SubmitWrite(r + cheap, Pattern(6)).ok());  // Cheaper but overlapping.
    auto first = queue.ServiceOne();
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first->id, *read_id) << "an overlapped older read blocks the newer write";
    EXPECT_EQ(first->data, media) << "the read must see pre-write media bytes";
    ASSERT_TRUE(queue.Drain().ok());
  }
  {
    common::Clock clock;
    SimDisk disk(Hp97560(), &clock);
    const Lba r = ExpensiveTrackSector(disk, &cheap);
    RequestQueue queue(&disk, {.depth = 4, .policy = SchedulerPolicy::kSptf});
    ASSERT_TRUE(queue.SubmitRead(r, 8).ok());
    auto write_id = queue.SubmitWrite(r + 16, Pattern(6));  // Cheaper and non-overlapping.
    ASSERT_TRUE(write_id.ok());
    auto first = queue.ServiceOne();
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first->id, *write_id)
        << "without overlap the cheaper newer write is free to go first";
    ASSERT_TRUE(queue.Drain().ok());
  }
}

// WAW hazard: a newer write may not pass an older overlapping write, so the overlap region
// ends up with the newer data (submission order), not whichever landed last by position.
TEST(RequestQueueTest, WriteMayNotPassOlderOverlappingWrite) {
  common::Clock clock;
  SimDisk disk(Hp97560(), &clock);
  uint64_t cheap = 0;
  const Lba w = ExpensiveTrackSector(disk, &cheap);
  const auto older = Pattern(8);
  const auto newer = Pattern(9);
  RequestQueue queue(&disk, {.depth = 4, .policy = SchedulerPolicy::kSptf});
  auto first_id = queue.SubmitWrite(w, older);
  ASSERT_TRUE(first_id.ok());
  ASSERT_TRUE(queue.SubmitWrite(w + cheap, newer).ok());  // Cheaper, overlapping, newer.
  auto first = queue.ServiceOne();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->id, *first_id) << "the older overlapping write must be serviced first";
  ASSERT_TRUE(queue.Drain().ok());
  std::vector<std::byte> on_media(kBlockBytes);
  disk.PeekMedia(w + cheap, on_media);
  EXPECT_EQ(on_media, newer) << "the overlap must hold the newer write's bytes";
}

// Satellite (d): bounded-age starvation promotion. A far request stuck behind a stream of
// near ones is serviced first once its wait crosses the bound; without a bound SPTF leaves
// it for last.
TEST(RequestQueueTest, StarvationBoundPromotesOldestRequest) {
  auto far_service_rank = [](common::Duration bound) {
    common::Clock clock;
    SimDisk disk(Hp97560(), &clock);
    const DiskGeometry& geometry = disk.geometry();
    const Lba far = geometry.ToLba({.cylinder = geometry.cylinders - 1, .head = 0, .sector = 0});
    RequestQueue queue(&disk,
                       {.depth = 8, .policy = SchedulerPolicy::kSptf,
                        .starvation_bound = bound});
    auto far_id = queue.SubmitWrite(far, Pattern(0));
    EXPECT_TRUE(far_id.ok());
    clock.Advance(common::Milliseconds(6));
    for (uint32_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(queue.SubmitWrite(i * 16, Pattern(i + 1)).ok());
    }
    auto done = queue.Drain();
    EXPECT_TRUE(done.ok());
    for (size_t i = 0; i < done->size(); ++i) {
      if ((*done)[i].id == *far_id) {
        return i;
      }
    }
    return done->size();
  };

  EXPECT_EQ(far_service_rank(0), 4u) << "pure SPTF leaves the far request for last";
  EXPECT_EQ(far_service_rank(common::Milliseconds(5)), 0u)
      << "a 5 ms bound promotes the 6 ms-old far request to the front";
}

// The memoized positioning cache inside PickNext must not change a single scheduling
// decision. Drive ServiceOne step-by-step against a brute-force reference that re-derives
// each pick from the public mechanical model (EstimatePosition at the pick instant) plus the
// documented hazard and starvation rules, over randomized workloads with overlapping extents.
TEST(RequestQueueTest, SptfScheduleMatchesBruteForceReference) {
  struct Mirror {
    uint64_t id = 0;
    bool is_write = false;
    Lba lba = 0;
    uint64_t sectors = 0;
    common::Time submit = 0;
  };
  const common::Duration bound = common::Milliseconds(20);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    common::Clock clock;
    SimDisk disk(Hp97560(), &clock);
    RequestQueue queue(&disk,
                       {.depth = 16, .policy = SchedulerPolicy::kSptf,
                        .starvation_bound = bound});
    common::Rng rng(seed);
    std::vector<Mirror> mirror;  // Submission order, exactly like pending_.
    // A hot region a few cylinders wide: dense enough that extents overlap (exercising the
    // hazard rules) while still spanning several tracks (exercising seek and rotation costs).
    const Lba region = disk.geometry().SectorsPerCylinder() * 4;

    auto submit_one = [&] {
      Mirror m;
      m.is_write = rng.Chance(0.6);
      m.lba = rng.Below(region);
      m.sectors = 1 + rng.Below(16);
      m.submit = clock.Now();
      if (m.is_write) {
        std::vector<std::byte> data(m.sectors * disk.SectorBytes());
        for (size_t i = 0; i < data.size(); ++i) {
          data[i] = static_cast<std::byte>(static_cast<uint8_t>(m.lba * 131 + i));
        }
        auto id = queue.SubmitWrite(m.lba, data);
        ASSERT_TRUE(id.ok());
        m.id = *id;
      } else {
        auto id = queue.SubmitRead(m.lba, m.sectors);
        ASSERT_TRUE(id.ok());
        m.id = *id;
      }
      mirror.push_back(m);
    };

    auto expected_pick = [&]() -> uint64_t {
      if (mirror.size() == 1) {
        return mirror[0].id;
      }
      const common::Time now = clock.Now();
      if (now - mirror[0].submit >= bound) {
        return mirror[0].id;
      }
      size_t best = mirror.size();
      common::Duration best_cost = 0;
      for (size_t i = 0; i < mirror.size(); ++i) {
        bool eligible = true;
        if (mirror[i].is_write) {
          for (size_t j = 0; j < i && eligible; ++j) {
            eligible = mirror[i].lba >= mirror[j].lba + mirror[j].sectors ||
                       mirror[j].lba >= mirror[i].lba + mirror[i].sectors;
          }
        }
        if (!eligible) {
          continue;
        }
        const common::Duration cost = disk.EstimatePosition(mirror[i].lba, now);
        if (best == mirror.size() || cost < best_cost) {
          best = i;
          best_cost = cost;
        }
      }
      return mirror[best].id;
    };

    auto service_one = [&] {
      const uint64_t want = expected_pick();
      auto done = queue.ServiceOne();
      ASSERT_TRUE(done.ok());
      EXPECT_TRUE(done->status.ok());
      EXPECT_EQ(done->id, want) << "seed " << seed << ", pending " << mirror.size();
      mirror.erase(std::find_if(mirror.begin(), mirror.end(),
                                [&](const Mirror& m) { return m.id == done->id; }));
    };

    for (int round = 0; round < 40; ++round) {
      const uint64_t submits = 1 + rng.Below(4);
      for (uint64_t k = 0; k < submits && queue.CanSubmit(); ++k) {
        submit_one();
      }
      // An occasional idle gap shifts the rotational phase and ages the queue head toward the
      // starvation bound, so both promotion branches are exercised.
      if (rng.Chance(0.2)) {
        clock.Advance(common::Milliseconds(1 + rng.Below(25)));
      }
      const uint64_t services = 1 + rng.Below(mirror.size());
      for (uint64_t k = 0; k < services && !mirror.empty(); ++k) {
        service_one();
      }
    }
    while (!mirror.empty()) {
      service_one();
    }
  }
}

TEST(RequestQueueTest, ReadCompletionCarriesDataAndTimestamps) {
  common::Clock clock;
  SimDisk disk(Hp97560(), &clock);
  const auto data = Pattern(9);
  disk.PokeMedia(64, data);

  RequestQueue queue(&disk, {.depth = 4, .policy = SchedulerPolicy::kFcfs});
  clock.Advance(common::Milliseconds(1));
  ASSERT_TRUE(queue.SubmitRead(64, 8).ok());
  auto done = queue.ServiceOne();
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done->is_write);
  EXPECT_EQ(done->data, data);
  EXPECT_EQ(done->submit_time, common::Milliseconds(1));
  EXPECT_GE(done->dispatch_time, done->submit_time);
  EXPECT_GT(done->complete_time, done->dispatch_time);
  EXPECT_EQ(done->Latency(), done->complete_time - done->submit_time);
}

}  // namespace
}  // namespace vlog::simdisk
