#include "src/simdisk/request_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::simdisk {
namespace {

constexpr size_t kBlockBytes = 4096;

std::vector<std::byte> Pattern(uint32_t seed) {
  std::vector<std::byte> v(kBlockBytes);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 131 + i * 7));
  }
  return v;
}

// Submits block writes at `lbas` all at time zero, drains under `policy`, and returns the
// total simulated time. The request set and disk state are identical across policies, so the
// difference is purely scheduling.
common::Time DrainAll(SchedulerPolicy policy, const std::vector<Lba>& lbas) {
  common::Clock clock;
  SimDisk disk(Hp97560(), &clock);
  RequestQueue queue(&disk, {.depth = 32, .policy = policy});
  for (size_t i = 0; i < lbas.size(); ++i) {
    EXPECT_TRUE(queue.SubmitWrite(lbas[i], Pattern(static_cast<uint32_t>(i))).ok());
  }
  auto done = queue.Drain();
  EXPECT_TRUE(done.ok());
  EXPECT_EQ(done->size(), lbas.size());
  for (const IoCompletion& c : *done) {
    EXPECT_TRUE(c.status.ok());
  }
  return clock.Now();
}

// A request set that ping-pongs between the outer and inner cylinders: pessimal for FCFS,
// trivially clustered by a positional scheduler.
std::vector<Lba> PingPongLbas(const DiskGeometry& geometry) {
  std::vector<Lba> lbas;
  const uint32_t far = geometry.cylinders - 100;
  for (uint32_t i = 0; i < 4; ++i) {
    lbas.push_back(geometry.ToLba({.cylinder = i * 8, .head = 0, .sector = 0}));
    lbas.push_back(geometry.ToLba({.cylinder = far + i * 8, .head = 0, .sector = 0}));
  }
  return lbas;
}

TEST(RequestQueueTest, FcfsServicesInSubmissionOrder) {
  common::Clock clock;
  SimDisk disk(Hp97560(), &clock);
  RequestQueue queue(&disk, {.depth = 8, .policy = SchedulerPolicy::kFcfs});
  const std::vector<Lba> lbas = PingPongLbas(disk.geometry());
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < lbas.size(); ++i) {
    auto id = queue.SubmitWrite(lbas[i], Pattern(static_cast<uint32_t>(i)));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  auto done = queue.Drain();
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ((*done)[i].id, ids[i]);
  }
}

// Satellite (d): on a known request set, SPTF must finish in strictly lower simulated time
// than FCFS. Both drains see the same requests submitted at the same instant on identical
// disks, so the comparison is deterministic.
TEST(RequestQueueTest, SptfStrictlyFasterThanFcfsOnPingPongSet) {
  common::Clock probe_clock;
  SimDisk probe(Hp97560(), &probe_clock);
  const std::vector<Lba> lbas = PingPongLbas(probe.geometry());

  const common::Time fcfs = DrainAll(SchedulerPolicy::kFcfs, lbas);
  const common::Time sptf = DrainAll(SchedulerPolicy::kSptf, lbas);
  EXPECT_LT(sptf, fcfs);
  // The ping-pong set forces FCFS through seven long seeks; SPTF clusters the two cylinder
  // groups and should save well over a millisecond per avoided long seek.
  EXPECT_LT(sptf, fcfs - common::Milliseconds(5));
}

// SPTF tie-break determinism: requests with identical positioning cost (same LBA) must be
// serviced oldest-first, so equal-cost scheduling is FIFO rather than submission-set dependent.
TEST(RequestQueueTest, SptfTieBreaksTowardOlderRequest) {
  auto run = [] {
    common::Clock clock;
    SimDisk disk(Hp97560(), &clock);
    const DiskGeometry& geometry = disk.geometry();
    const Lba near = geometry.ToLba({.cylinder = 0, .head = 0, .sector = 0});
    const Lba far = geometry.ToLba({.cylinder = geometry.cylinders - 1, .head = 0, .sector = 0});
    RequestQueue queue(&disk, {.depth = 8, .policy = SchedulerPolicy::kSptf});
    // Three equal-cost requests (same LBA) interleaved with a far one.
    std::vector<uint64_t> tied;
    tied.push_back(*queue.SubmitWrite(near, Pattern(1)));
    EXPECT_TRUE(queue.SubmitWrite(far, Pattern(2)).ok());
    tied.push_back(*queue.SubmitWrite(near, Pattern(3)));
    tied.push_back(*queue.SubmitWrite(near, Pattern(4)));
    auto done = queue.Drain();
    EXPECT_TRUE(done.ok());
    std::vector<uint64_t> order;
    for (const IoCompletion& c : *done) {
      order.push_back(c.id);
    }
    return std::make_pair(order, tied);
  };

  const auto [order, tied] = run();
  std::vector<uint64_t> tied_in_service_order;
  for (const uint64_t id : order) {
    if (std::find(tied.begin(), tied.end(), id) != tied.end()) {
      tied_in_service_order.push_back(id);
    }
  }
  EXPECT_EQ(tied_in_service_order, tied)
      << "equal-cost requests must retain FIFO order under SPTF";
  // And the whole schedule is a pure function of the request set: a second identical run must
  // produce the identical service order.
  const auto [order2, tied2] = run();
  EXPECT_EQ(order, order2);
}

TEST(RequestQueueTest, DepthLimitEnforced) {
  common::Clock clock;
  SimDisk disk(Hp97560(), &clock);
  RequestQueue queue(&disk, {.depth = 2, .policy = SchedulerPolicy::kFcfs});
  ASSERT_TRUE(queue.SubmitWrite(0, Pattern(0)).ok());
  ASSERT_TRUE(queue.SubmitWrite(8, Pattern(1)).ok());
  EXPECT_FALSE(queue.CanSubmit());
  auto overflow = queue.SubmitWrite(16, Pattern(2));
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), common::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(queue.ServiceOne().ok());
  EXPECT_TRUE(queue.CanSubmit());
  ASSERT_TRUE(queue.SubmitWrite(16, Pattern(2)).ok());
  ASSERT_TRUE(queue.Drain().ok());
  EXPECT_EQ(queue.Pending(), 0u);
}

// With one outstanding request the queued path must charge exactly the synchronous cost: same
// clock advance, same media contents.
TEST(RequestQueueTest, DepthOneMatchesSynchronousWrite) {
  const auto data = Pattern(7);
  const Lba lba = 1234;

  common::Clock sync_clock;
  SimDisk sync_disk(Hp97560(), &sync_clock);
  ASSERT_TRUE(sync_disk.Write(lba, data).ok());
  const common::Time sync_done = sync_clock.Now();

  common::Clock q_clock;
  SimDisk q_disk(Hp97560(), &q_clock);
  RequestQueue queue(&q_disk, {.depth = 1, .policy = SchedulerPolicy::kSptf});
  ASSERT_TRUE(queue.SubmitWrite(lba, data).ok());
  auto done = queue.ServiceOne();
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(q_clock.Now(), sync_done);
  EXPECT_EQ(done->complete_time, sync_done);

  std::vector<std::byte> sync_media(kBlockBytes), q_media(kBlockBytes);
  sync_disk.PeekMedia(lba, sync_media);
  q_disk.PeekMedia(lba, q_media);
  EXPECT_EQ(sync_media, q_media);
}

// A full queue pipelines controller overhead behind media work, so draining N requests must be
// cheaper than issuing the same N writes synchronously.
TEST(RequestQueueTest, QueuedWritesCheaperThanSynchronous) {
  std::vector<Lba> lbas;
  for (uint32_t i = 0; i < 8; ++i) {
    lbas.push_back(i * 8);
  }

  common::Clock sync_clock;
  SimDisk sync_disk(Hp97560(), &sync_clock);
  for (size_t i = 0; i < lbas.size(); ++i) {
    ASSERT_TRUE(sync_disk.Write(lbas[i], Pattern(static_cast<uint32_t>(i))).ok());
  }
  const common::Time sync_done = sync_clock.Now();

  const common::Time queued_done = DrainAll(SchedulerPolicy::kFcfs, lbas);
  EXPECT_LT(queued_done, sync_done);
}

TEST(RequestQueueTest, ReadCompletionCarriesDataAndTimestamps) {
  common::Clock clock;
  SimDisk disk(Hp97560(), &clock);
  const auto data = Pattern(9);
  disk.PokeMedia(64, data);

  RequestQueue queue(&disk, {.depth = 4, .policy = SchedulerPolicy::kFcfs});
  clock.Advance(common::Milliseconds(1));
  ASSERT_TRUE(queue.SubmitRead(64, 8).ok());
  auto done = queue.ServiceOne();
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done->is_write);
  EXPECT_EQ(done->data, data);
  EXPECT_EQ(done->submit_time, common::Milliseconds(1));
  EXPECT_GE(done->dispatch_time, done->submit_time);
  EXPECT_GT(done->complete_time, done->dispatch_time);
  EXPECT_EQ(done->Latency(), done->complete_time - done->submit_time);
}

}  // namespace
}  // namespace vlog::simdisk
