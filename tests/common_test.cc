#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"

namespace vlog::common {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = NotFound("missing inode");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing inode");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kIoError); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(InvalidArgument("bad"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

Status Passthrough(Status s) {
  RETURN_IF_ERROR(s);
  return OkStatus();
}

TEST(StatusMacros, ReturnIfError) {
  EXPECT_TRUE(Passthrough(OkStatus()).ok());
  EXPECT_EQ(Passthrough(Corruption("x")).code(), StatusCode::kCorruption);
}

TEST(Clock, StartsAtZeroAndAdvances) {
  Clock clock;
  EXPECT_EQ(clock.Now(), 0);
  clock.Advance(Milliseconds(2));
  EXPECT_EQ(clock.Now(), 2'000'000);
  clock.Advance(-5);  // Negative durations are ignored.
  EXPECT_EQ(clock.Now(), 2'000'000);
  clock.AdvanceTo(1'000'000);  // Never goes backwards.
  EXPECT_EQ(clock.Now(), 2'000'000);
  clock.AdvanceTo(3'000'000);
  EXPECT_EQ(clock.Now(), 3'000'000);
}

TEST(Time, ConversionsRoundTrip) {
  EXPECT_EQ(Milliseconds(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(ToMilliseconds(Milliseconds(14.992)), 14.992);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(ToMicroseconds(Microseconds(100)), 100.0);
}

TEST(Crc32, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283.
  const char* s = "123456789";
  std::vector<std::byte> data;
  for (const char* p = s; *p; ++p) {
    data.push_back(static_cast<std::byte>(*p));
  }
  EXPECT_EQ(Crc32c(data), 0xE3069283u);
}

TEST(Crc32, DetectsBitFlip) {
  std::vector<std::byte> data(64, std::byte{0xAB});
  const uint32_t before = Crc32c(data);
  data[17] ^= std::byte{0x01};
  EXPECT_NE(Crc32c(data), before);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(Crc32c({}), 0u); }

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  EXPECT_EQ(rng.Below(1), 0u);
  EXPECT_EQ(rng.Below(0), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Bytes, RoundTripAllWidths) {
  std::vector<std::byte> buf(32);
  StoreLe<uint16_t>(buf, 0, 0xBEEF);
  StoreLe<uint32_t>(buf, 2, 0xDEADBEEF);
  StoreLe<uint64_t>(buf, 6, 0x0123456789ABCDEFull);
  EXPECT_EQ(LoadLe<uint16_t>(buf, 0), 0xBEEF);
  EXPECT_EQ(LoadLe<uint32_t>(buf, 2), 0xDEADBEEFu);
  EXPECT_EQ(LoadLe<uint64_t>(buf, 6), 0x0123456789ABCDEFull);
}

TEST(Bytes, LittleEndianLayout) {
  std::vector<std::byte> buf(4);
  StoreLe<uint32_t>(buf, 0, 0x11223344);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x44);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x11);
}

}  // namespace
}  // namespace vlog::common
