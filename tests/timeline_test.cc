// Timeline engine tests: window rotation and counter/gauge sampling semantics, the exact
// merged-windows == run-wide histogram identity, SLO span coalescing with dominant-component
// attribution, the steady-state detector, the attached-timeline-never-moves-the-clock
// guarantee, and byte-identical open-loop Poisson reruns.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/time.h"
#include "src/core/vld.h"
#include "src/obs/histogram.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"
#include "src/workload/queue_sweep.h"

namespace vlog {
namespace {

using common::Milliseconds;
using obs::LatencyHistogram;
using obs::Timeline;
using obs::TimelineConfig;
using obs::TimelineWindow;
using obs::WindowedHistogram;

// Bit-for-bit histogram equality: identical bucket vectors and identical exact summaries.
bool HistEq(const LatencyHistogram& a, const LatencyHistogram& b) {
  return a.buckets() == b.buckets() && a.Count() == b.Count() && a.Sum() == b.Sum() &&
         a.Min() == b.Min() && a.Max() == b.Max();
}

// --- Window rotation and sampling semantics ------------------------------------------------

TEST(TimelineTest, CounterDeltasAndGaugeSamplesPerWindow) {
  uint64_t cumulative = 0;
  uint64_t level = 7;
  Timeline tl(TimelineConfig{.window = Milliseconds(10), .start = 0});
  tl.AddCounter("ops", [&] { return cumulative; });
  tl.AddGauge("depth", [&] { return level; });

  cumulative = 5;
  level = 3;
  tl.Poll(Milliseconds(10));  // Closes window 0 exactly at its boundary.
  cumulative = 12;
  level = 9;
  tl.Poll(Milliseconds(21));  // Past window 1's end: closes it.

  ASSERT_EQ(tl.windows().size(), 2u);
  EXPECT_EQ(tl.windows()[0].index, 0u);
  EXPECT_EQ(tl.windows()[0].start, Milliseconds(0));
  EXPECT_EQ(tl.windows()[0].end, Milliseconds(10));
  EXPECT_EQ(tl.windows()[0].counters[0], 5u);  // Delta from 0.
  EXPECT_EQ(tl.windows()[0].gauges[0], 3u);    // Sampled at close.
  EXPECT_EQ(tl.windows()[1].counters[0], 7u);  // Delta from the previous close.
  EXPECT_EQ(tl.windows()[1].gauges[0], 9u);
}

TEST(TimelineTest, PollAcrossSeveralBoundariesChargesDeltaToFirstElapsedWindow) {
  uint64_t cumulative = 0;
  Timeline tl(TimelineConfig{.window = Milliseconds(10), .start = 0});
  tl.AddCounter("ops", [&] { return cumulative; });
  cumulative = 30;
  tl.Poll(Milliseconds(35));  // Crosses three boundaries in one Poll.
  ASSERT_EQ(tl.windows().size(), 3u);
  EXPECT_EQ(tl.windows()[0].counters[0], 30u);  // Whole delta on the first elapsed window.
  EXPECT_EQ(tl.windows()[1].counters[0], 0u);
  EXPECT_EQ(tl.windows()[2].counters[0], 0u);
}

TEST(TimelineTest, FinishClosesPartialTailWindow) {
  Timeline tl(TimelineConfig{.window = Milliseconds(10), .start = 0});
  WindowedHistogram& h = tl.AddHistogram("lat");
  tl.Poll(Milliseconds(10));
  h.Record(1000);
  tl.Finish(Milliseconds(14));  // Mid-window: the tail closes at 14 ms, not 20.
  ASSERT_EQ(tl.windows().size(), 2u);
  EXPECT_EQ(tl.windows()[1].start, Milliseconds(10));
  EXPECT_EQ(tl.windows()[1].end, Milliseconds(14));
  EXPECT_EQ(tl.windows()[1].histograms[0].Count(), 1u);
}

// --- The exact merge identity (satellite: merged windows == run-wide, bit for bit) ---------

TEST(TimelineTest, MergedWindowHistogramsEqualRunWideExactly) {
  Timeline tl(TimelineConfig{.window = Milliseconds(10), .start = 0});
  WindowedHistogram& h = tl.AddHistogram("lat");
  // Window 0: a spread of magnitudes. Window 1: empty. Window 2: a single sample.
  h.Record(17);
  h.Record(1000);
  h.Record(123456789);
  tl.Poll(Milliseconds(10));
  tl.Poll(Milliseconds(20));  // Window 1 closes with nothing recorded.
  h.Record(42);
  tl.Finish(Milliseconds(25));

  ASSERT_EQ(tl.windows().size(), 3u);
  EXPECT_EQ(tl.windows()[1].histograms[0].Count(), 0u);  // The empty window really is empty.
  LatencyHistogram merged;
  for (const TimelineWindow& w : tl.windows()) {
    merged.Merge(w.histograms[0]);
  }
  EXPECT_TRUE(HistEq(merged, h.total()));
  EXPECT_EQ(merged.Count(), 4u);
  EXPECT_EQ(merged.Min(), 17);
  EXPECT_EQ(merged.Max(), 123456789);
}

TEST(TimelineTest, MergeIdentityHoldsForSingleSampleRun) {
  Timeline tl(TimelineConfig{.window = Milliseconds(10), .start = 0});
  WindowedHistogram& h = tl.AddHistogram("lat");
  h.Record(5000);
  tl.Finish(Milliseconds(3));
  ASSERT_EQ(tl.windows().size(), 1u);
  LatencyHistogram merged;
  merged.Merge(tl.windows()[0].histograms[0]);
  EXPECT_TRUE(HistEq(merged, h.total()));
  EXPECT_EQ(merged.Count(), 1u);
}

TEST(TimelineTest, MergeIdentityHoldsForAllEmptyWindows) {
  Timeline tl(TimelineConfig{.window = Milliseconds(10), .start = 0});
  WindowedHistogram& h = tl.AddHistogram("lat");
  tl.Poll(Milliseconds(30));
  tl.Finish(Milliseconds(30));
  ASSERT_EQ(tl.windows().size(), 3u);
  LatencyHistogram merged;
  for (const TimelineWindow& w : tl.windows()) {
    merged.Merge(w.histograms[0]);
  }
  EXPECT_TRUE(HistEq(merged, h.total()));
  EXPECT_EQ(merged.Count(), 0u);
}

// --- SLO monitor ---------------------------------------------------------------------------

TEST(TimelineTest, SloCoalescesConsecutiveViolationsAndAttributesDominantComponent) {
  uint64_t alpha = 0;
  uint64_t beta = 0;
  Timeline tl(TimelineConfig{.window = Milliseconds(10), .start = 0});
  tl.AddCounter("c.alpha", [&] { return alpha; });
  tl.AddCounter("c.beta", [&] { return beta; });
  tl.AddCounter("other", [&] { return uint64_t{999}; });  // Non-prefixed: never a candidate.
  WindowedHistogram& h = tl.AddHistogram("lat");
  tl.AddSlo("lat", Milliseconds(1), "c.");

  h.Record(Milliseconds(2));  // Window 0 violates (p99 ~2 ms > 1 ms budget).
  alpha += 10;
  tl.Poll(Milliseconds(10));
  h.Record(Milliseconds(3));  // Window 1 violates too; beta dominates the breach overall.
  beta += 100;
  tl.Poll(Milliseconds(20));
  h.Record(1000);  // Window 2 is comfortably under budget: the span closes.
  tl.Poll(Milliseconds(30));
  tl.Poll(Milliseconds(40));  // Window 3 is empty — an empty window never violates.
  h.Record(Milliseconds(5));  // Window 4 opens a new span, still open at Finish.
  tl.Finish(Milliseconds(45));

  ASSERT_EQ(tl.slos().size(), 1u);
  const Timeline::SloResult& slo = tl.slos()[0];
  ASSERT_EQ(slo.violations.size(), 2u);
  EXPECT_EQ(slo.violations[0].start_window, 0u);
  EXPECT_EQ(slo.violations[0].end_window, 1u);
  EXPECT_EQ(slo.violations[0].start, Milliseconds(0));
  EXPECT_EQ(slo.violations[0].end, Milliseconds(20));
  // 100 > 10, and the non-prefixed "other" is excluded; dominant reports the component name
  // with the prefix stripped.
  EXPECT_EQ(slo.violations[0].dominant, "beta");
  EXPECT_GE(slo.violations[0].worst_p99, 2e6);
  EXPECT_EQ(slo.violations[1].start_window, 4u);
  EXPECT_EQ(slo.violations[1].end_window, 4u);
  EXPECT_FALSE(slo.in_violation);  // Finish closed the open span.
}

// --- Steady-state detector -----------------------------------------------------------------

TEST(TimelineTest, SteadyStateDetectsFlatButNotRampingSeries) {
  uint64_t flat = 1000;
  uint64_t ramp = 1000;
  Timeline flat_tl(TimelineConfig{.window = Milliseconds(10), .start = 0});
  flat_tl.AddGauge("g", [&] { return flat; });
  flat_tl.AddSteadySeries("g");
  flat_tl.ConfigureSteadyState(4, 0.05);
  Timeline ramp_tl(TimelineConfig{.window = Milliseconds(10), .start = 0});
  ramp_tl.AddGauge("g", [&] { return ramp; });
  ramp_tl.AddSteadySeries("g");
  ramp_tl.ConfigureSteadyState(4, 0.05);

  for (int w = 1; w <= 6; ++w) {
    ramp += 500;  // 50% per window: far outside a 5% tolerance.
    flat_tl.Poll(Milliseconds(10 * w));
    ramp_tl.Poll(Milliseconds(10 * w));
  }
  EXPECT_TRUE(flat_tl.IsSteady());
  EXPECT_GE(flat_tl.steady_windows(), 3u);  // Steady from the K-th close onward.
  EXPECT_FALSE(ramp_tl.IsSteady());
  EXPECT_EQ(ramp_tl.steady_windows(), 0u);
}

TEST(TimelineTest, SteadyStateRequiresKWindows) {
  uint64_t flat = 5;
  Timeline tl(TimelineConfig{.window = Milliseconds(10), .start = 0});
  tl.AddGauge("g", [&] { return flat; });
  tl.AddSteadySeries("g");
  tl.ConfigureSteadyState(4, 0.05);
  tl.Poll(Milliseconds(10));
  tl.Poll(Milliseconds(20));
  tl.Poll(Milliseconds(30));
  EXPECT_FALSE(tl.IsSteady());  // Only 3 of the required 4 windows exist.
  tl.Poll(Milliseconds(40));
  EXPECT_TRUE(tl.IsSteady());
}

// --- Observation never moves the clock -----------------------------------------------------

simdisk::DiskParams TestDisk() { return simdisk::Truncated(simdisk::Hp97560(), 24); }

// The canned queued workload with the full observation stack (tracer + timeline + probes +
// breakdown counters) attached or nothing at all; returns the final sim-time.
common::Time RunObserved(bool observed, std::string* json_out = nullptr) {
  common::Clock clock;
  simdisk::SimDisk disk(TestDisk(), &clock);
  obs::TraceRecorder tracer(&clock);
  core::Vld vld(&disk, core::VldConfig{.queue_depth = 32});
  EXPECT_TRUE(vld.Format().ok());
  Timeline tl(TimelineConfig{.window = Milliseconds(10), .start = clock.Now()});
  WindowedHistogram* lat = nullptr;
  if (observed) {
    disk.set_tracer(&tracer);
    lat = &tl.AddHistogram("latency");
    obs::RegisterBreakdownCounters(tl, tracer, "breakdown.");
    vld.RegisterTimelineProbes(tl, "");
    tl.AddSlo("latency", Milliseconds(25), "breakdown.");
    tl.AddSteadySeries("vld.free_blocks");
  }
  common::Rng rng(42);
  const uint32_t blocks = vld.logical_blocks() / 2;
  std::vector<std::byte> payload(4096, std::byte{0x7});
  for (int round = 0; round < 6; ++round) {
    for (uint32_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(
          vld.SubmitWrite(static_cast<simdisk::Lba>(rng.Below(blocks)) * 8, payload).ok());
    }
    auto flushed = vld.FlushQueue();
    EXPECT_TRUE(flushed.ok());
    if (observed) {
      for (const core::Vld::QueuedCompletion& c : *flushed) {
        lat->Record(c.Latency());
      }
      tl.Poll(clock.Now());
    }
  }
  if (observed) {
    tl.Finish(clock.Now());
    EXPECT_GE(tl.windows().size(), 1u);
    if (json_out != nullptr) {
      *json_out = tl.Json();
    }
  }
  return clock.Now();
}

TEST(TimelineOverheadTest, AttachedTimelineAndTracerNeverMoveTheClock) {
  EXPECT_EQ(RunObserved(/*observed=*/true), RunObserved(/*observed=*/false));
}

TEST(TimelineDeterminismTest, SameSeedRunsProduceByteIdenticalTimelineJson) {
  std::string a;
  std::string b;
  RunObserved(/*observed=*/true, &a);
  RunObserved(/*observed=*/true, &b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\":\"vlog-timeline/1\""), std::string::npos);
}

// --- Open-loop Poisson arrivals ------------------------------------------------------------

struct OpenLoopRun {
  common::Time final_time = 0;
  std::string timeline_json;
  workload::OpenLoopResult result;
  LatencyHistogram merged_windows;
  LatencyHistogram window_total;
  std::vector<Timeline::SloViolation> violations;
};

OpenLoopRun RunOpenLoop() {
  common::Clock clock;
  simdisk::SimDisk disk(TestDisk(), &clock);
  obs::TraceRecorder tracer(&clock);
  disk.set_tracer(&tracer);
  core::Vld vld(&disk, core::VldConfig{.queue_depth = 32});
  EXPECT_TRUE(vld.Format().ok());
  Timeline tl(TimelineConfig{.window = Milliseconds(50), .start = clock.Now()});
  WindowedHistogram& lat = tl.AddHistogram("latency");
  obs::RegisterBreakdownCounters(tl, tracer, "breakdown.");
  vld.RegisterTimelineProbes(tl, "");
  tl.AddSlo("latency", Milliseconds(50), "breakdown.");
  // An over-capacity burst in the middle of an otherwise sustainable arrival stream.
  const workload::OpenLoopOptions options{.rate_ops_per_s = 150,
                                          .burst_rate_ops_per_s = 1200,
                                          .burst_start = Milliseconds(200),
                                          .burst_duration = Milliseconds(200),
                                          .arrivals = 300,
                                          .seed = 2};
  OpenLoopRun run;
  auto result = workload::RunOpenLoopPoisson(vld, options, &tl, &lat);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  run.result = std::move(result).value();
  tl.Finish(clock.Now());
  run.final_time = clock.Now();
  run.timeline_json = tl.Json();
  for (const TimelineWindow& w : tl.windows()) {
    run.merged_windows.Merge(w.histograms[0]);
  }
  run.window_total = lat.total();
  run.violations = tl.slos()[0].violations;
  return run;
}

TEST(OpenLoopTest, SameSeedRerunsAreByteIdentical) {
  const OpenLoopRun a = RunOpenLoop();
  const OpenLoopRun b = RunOpenLoop();
  EXPECT_EQ(a.final_time, b.final_time);
  ASSERT_FALSE(a.timeline_json.empty());
  EXPECT_EQ(a.timeline_json, b.timeline_json);
}

TEST(OpenLoopTest, WindowMergeMatchesDriverHistogramExactly) {
  const OpenLoopRun run = RunOpenLoop();
  EXPECT_EQ(run.result.ops, 300u);
  // Three-way identity: merged window histograms == windowed total == driver's own histogram.
  EXPECT_TRUE(HistEq(run.merged_windows, run.window_total));
  EXPECT_TRUE(HistEq(run.merged_windows, run.result.latency_hist));
}

TEST(OpenLoopTest, OverloadBurstBreachesSloWithDominantComponent) {
  const OpenLoopRun run = RunOpenLoop();
  // The 8x-capacity burst must form a real backlog and drive at least one coalesced violation
  // span whose dominant component is attributed — under overload, time waiting in the queue.
  EXPECT_GT(run.result.max_backlog, 32u);
  ASSERT_GE(run.violations.size(), 1u);
  EXPECT_EQ(run.violations[0].dominant, "queueing");
  EXPECT_GT(run.violations[0].worst_p99, 50e6);  // Past the 50 ms budget.
}

}  // namespace
}  // namespace vlog
