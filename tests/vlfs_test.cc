#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/host_model.h"
#include "src/simdisk/sim_disk.h"
#include "src/vlfs/vlfs.h"

namespace vlog::vlfs {
namespace {

std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 41 + i * 11));
  }
  return v;
}

class VlfsTest : public ::testing::Test {
 protected:
  VlfsTest() { Reset(); }

  void Reset() {
    clock_ = common::Clock();
    disk_ = std::make_unique<simdisk::SimDisk>(simdisk::Truncated(simdisk::SeagateSt19101(), 4),
                                               &clock_);
    host_ = std::make_unique<simdisk::HostModel>(simdisk::ZeroCostHost(), &clock_);
    fs_ = std::make_unique<Vlfs>(disk_.get(), host_.get());
    ASSERT_TRUE(fs_->Format().ok());
  }

  // Restart over the same media (crash if Park() was not called).
  void Reopen() { fs_ = std::make_unique<Vlfs>(disk_.get(), host_.get()); }

  common::Clock clock_;
  std::unique_ptr<simdisk::SimDisk> disk_;
  std::unique_ptr<simdisk::HostModel> host_;
  std::unique_ptr<Vlfs> fs_;
};

TEST_F(VlfsTest, CreateWriteReadRoundTrip) {
  ASSERT_TRUE(fs_->Create("/a").ok());
  const auto data = Pattern(10000, 1);
  ASSERT_TRUE(fs_->Write("/a", 0, data, fs::WritePolicy::kSync).ok());
  std::vector<std::byte> out(data.size());
  auto n = fs_->Read("/a", 0, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(out, data);
}

TEST_F(VlfsTest, LargeFileThroughIndirect) {
  ASSERT_TRUE(fs_->Create("/big").ok());
  const auto data = Pattern(2 << 20, 2);  // 2 MB: well into the indirect range.
  ASSERT_TRUE(fs_->Write("/big", 0, data, fs::WritePolicy::kAsync).ok());
  ASSERT_TRUE(fs_->DropCaches().ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(fs_->Read("/big", 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(VlfsTest, DirectoriesAndRemoval) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  for (int i = 0; i < 100; ++i) {
    const std::string path = "/d/f" + std::to_string(i);
    ASSERT_TRUE(fs_->Create(path).ok());
    ASSERT_TRUE(fs_->Write(path, 0, Pattern(2048, i), fs::WritePolicy::kAsync).ok());
  }
  auto names = fs_->List("/d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 100u);
  for (int i = 0; i < 100; i += 2) {
    ASSERT_TRUE(fs_->Remove("/d/f" + std::to_string(i)).ok());
  }
  EXPECT_EQ(fs_->List("/d")->size(), 50u);
  std::vector<std::byte> out(2048);
  ASSERT_TRUE(fs_->Read("/d/f1", 0, out).ok());
  EXPECT_EQ(out, Pattern(2048, 1));
}

TEST_F(VlfsTest, ParkRecoverRoundTrip) {
  ASSERT_TRUE(fs_->Create("/p").ok());
  const auto data = Pattern(100000, 3);
  ASSERT_TRUE(fs_->Write("/p", 0, data, fs::WritePolicy::kSync).ok());
  ASSERT_TRUE(fs_->Park().ok());
  Reopen();
  auto info = fs_->Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->used_scan);
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(fs_->Read("/p", 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(VlfsTest, CrashRecoveryKeepsSyncedWrites) {
  ASSERT_TRUE(fs_->Create("/c").ok());
  const auto data = Pattern(8192, 4);
  ASSERT_TRUE(fs_->Write("/c", 0, data, fs::WritePolicy::kSync).ok());
  Reopen();  // No park: crash.
  auto info = fs_->Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->used_scan);
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(fs_->Read("/c", 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(VlfsTest, CrashBeforeCommitRollsBackWholeGroup) {
  ASSERT_TRUE(fs_->Create("/g").ok());
  ASSERT_TRUE(fs_->Write("/g", 0, Pattern(4096, 5), fs::WritePolicy::kSync).ok());
  // A group of async writes followed by a crash before any commit: all must vanish.
  ASSERT_TRUE(fs_->Write("/g", 0, Pattern(4096, 6), fs::WritePolicy::kAsync).ok());
  ASSERT_TRUE(fs_->Write("/g", 4096, Pattern(4096, 7), fs::WritePolicy::kAsync).ok());
  Reopen();
  ASSERT_TRUE(fs_->Recover().ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(fs_->Read("/g", 0, out).ok());
  EXPECT_EQ(out, Pattern(4096, 5)) << "uncommitted group must roll back";
  EXPECT_EQ(fs_->Stat("/g")->size, 4096u) << "size from the last commit";
}

TEST_F(VlfsTest, SyncWritesAreFastAndEager) {
  ASSERT_TRUE(fs_->Create("/fast").ok());
  std::vector<std::byte> block(4096);
  ASSERT_TRUE(fs_->Write("/fast", 0, block, fs::WritePolicy::kSync).ok());
  const common::Time start = clock_.Now();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fs_->Write("/fast", 0, block, fs::WritePolicy::kSync).ok());
  }
  const common::Duration per_write = (clock_.Now() - start) / 50;
  // Data block + inode block + map sector, all eager: well under a half rotation (3 ms).
  EXPECT_LT(per_write, common::Milliseconds(1.5))
      << common::ToMilliseconds(per_write) << " ms";
}

TEST_F(VlfsTest, CheckpointBoundsRecovery) {
  for (int i = 0; i < 30; ++i) {
    const std::string path = "/ck" + std::to_string(i);
    ASSERT_TRUE(fs_->Create(path).ok());
    ASSERT_TRUE(fs_->Write(path, 0, Pattern(4096, i), fs::WritePolicy::kSync).ok());
  }
  ASSERT_TRUE(fs_->Checkpoint().ok());
  ASSERT_TRUE(fs_->Write("/ck0", 0, Pattern(4096, 99), fs::WritePolicy::kSync).ok());
  ASSERT_TRUE(fs_->Park().ok());
  Reopen();
  auto info = fs_->Recover();
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->from_checkpoint);
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(fs_->Read("/ck0", 0, out).ok());
  EXPECT_EQ(out, Pattern(4096, 99));
  ASSERT_TRUE(fs_->Read("/ck7", 0, out).ok());
  EXPECT_EQ(out, Pattern(4096, 7));
}

TEST_F(VlfsTest, IdleCompactionPreservesDataAndCreatesEmptyTracks) {
  // Fill most of the disk so that fill-to-threshold writing touches nearly every track, then
  // punch holes: only the compactor can produce empty tracks again.
  const int kCount = 480;
  for (int i = 0; i < kCount; ++i) {
    const std::string path = "/x" + std::to_string(i);
    ASSERT_TRUE(fs_->Create(path).ok());
    ASSERT_TRUE(fs_->Write(path, 0, Pattern(12288, i), fs::WritePolicy::kAsync).ok());
  }
  ASSERT_TRUE(fs_->Sync().ok());
  for (int i = 0; i < kCount; i += 2) {
    ASSERT_TRUE(fs_->Remove("/x" + std::to_string(i)).ok());
  }
  fs_->RunIdle(common::Seconds(3));
  EXPECT_GT(fs_->compactor().stats().tracks_compacted, 0u);
  std::vector<std::byte> out(12288);
  for (int i = 1; i < kCount; i += 2) {
    ASSERT_TRUE(fs_->Read("/x" + std::to_string(i), 0, out).ok());
    ASSERT_EQ(out, Pattern(12288, i)) << i;
  }
}

TEST_F(VlfsTest, RandomizedWorkloadWithCrashes) {
  common::Rng rng(7777);
  const int kFiles = 12;
  std::vector<std::vector<std::byte>> shadow(kFiles);  // Shadow of committed contents.
  std::vector<std::vector<std::byte>> pending = shadow;
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(fs_->Create("/r" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(fs_->Park().ok());
  Reopen();
  ASSERT_TRUE(fs_->Recover().ok());
  shadow.assign(kFiles, {});
  pending = shadow;

  for (int round = 0; round < 12; ++round) {
    const int ops = 5 + static_cast<int>(rng.Below(20));
    for (int op = 0; op < ops; ++op) {
      const int f = static_cast<int>(rng.Below(kFiles));
      const std::string path = "/r" + std::to_string(f);
      const uint64_t max_off = pending[f].size();
      const uint64_t off = rng.Below(max_off + 1);
      const size_t len = 1 + rng.Below(12000);
      const auto data = Pattern(len, round * 100 + op);
      const bool sync = rng.Chance(0.4);
      ASSERT_TRUE(fs_->Write(path, off, data,
                             sync ? fs::WritePolicy::kSync : fs::WritePolicy::kAsync).ok());
      if (pending[f].size() < off + len) {
        pending[f].resize(off + len);
      }
      std::memcpy(pending[f].data() + off, data.data(), len);
      if (sync) {
        shadow = pending;
      }
    }
    if (rng.Chance(0.3)) {
      ASSERT_TRUE(fs_->Sync().ok());
      shadow = pending;
    }
    if (rng.Chance(0.3)) {
      fs_->RunIdle(common::Milliseconds(200));
    }
    const bool clean = rng.Chance(0.5);
    if (clean) {
      ASSERT_TRUE(fs_->Park().ok());
      shadow = pending;  // Park commits the open group.
    }
    Reopen();
    ASSERT_TRUE(fs_->Recover().ok());
    // After recovery, contents must be at least the last committed state. (Async data beyond
    // the last commit may or may not survive is NOT true here: uncommitted groups roll back
    // entirely, so contents equal the shadow exactly.)
    for (int f = 0; f < kFiles; ++f) {
      const std::string path = "/r" + std::to_string(f);
      auto stat = fs_->Stat(path);
      ASSERT_TRUE(stat.ok()) << path;
      ASSERT_EQ(stat->size, shadow[f].size()) << "round " << round << " file " << f;
      std::vector<std::byte> out(shadow[f].size());
      if (!out.empty()) {
        ASSERT_TRUE(fs_->Read(path, 0, out).ok());
        ASSERT_EQ(out, shadow[f]) << "round " << round << " file " << f;
      }
    }
    pending = shadow;
  }
}

}  // namespace
}  // namespace vlog::vlfs
