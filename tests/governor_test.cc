// CompactionGovernor: duty-cycle feedback behavior, and the governor-vs-idle-compactor
// differential — with an infinite SLO budget and always-idle arrivals the governed path must
// be bit-identical (media and clock) to the plain RunIdle path, the same oracle pattern
// queued_read_test uses for queued-vs-sync reads.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/core/governor.h"
#include "src/core/vld.h"
#include "src/obs/timeline.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"
#include "src/workload/queue_sweep.h"

namespace vlog::core {
namespace {

std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(static_cast<uint8_t>(seed * 7 + i * 13));
  }
  return v;
}

struct Rig {
  explicit Rig(VldConfig config = {}) {
    disk = std::make_unique<simdisk::SimDisk>(simdisk::Truncated(simdisk::SeagateSt19101(), 3),
                                              &clock);
    vld = std::make_unique<Vld>(disk.get(), config);
    EXPECT_TRUE(vld->Format().ok());
  }

  common::Clock clock;
  std::unique_ptr<simdisk::SimDisk> disk;
  std::unique_ptr<Vld> vld;
};

// Identical deterministic foreground history on any rig: fill a region, then rounds of random
// overwrites and trims that create compaction debt between idle gaps.
void RoundOfForeground(Vld& vld, common::Rng& rng, uint32_t blocks, int round) {
  for (int i = 0; i < 12; ++i) {
    const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
    ASSERT_TRUE(vld.Write(static_cast<simdisk::Lba>(b) * 8, Pattern(4096, b + round)).ok());
  }
  for (int i = 0; i < 4; ++i) {
    const uint32_t b = static_cast<uint32_t>(rng.Below(blocks));
    ASSERT_TRUE(vld.Trim(static_cast<simdisk::Lba>(b) * 8, 8).ok());
  }
}

TEST(GovernorDifferentialTest, InfiniteBudgetIdleArrivalsMatchIdleCompactorBitExactly) {
  Rig governed;
  Rig plain;
  // Infinite SLO budget (0 = latency never throttles) and no timeline: the governor's only
  // inputs are the free-space gauges RunIdle itself reacts to.
  GovernorConfig config;
  config.slo_budget = 0;
  CompactionGovernor governor(governed.vld.get(), nullptr, config);

  const uint32_t blocks = static_cast<uint32_t>(governed.vld->logical_blocks() * 0.8);
  common::Rng rng_a(11);
  common::Rng rng_b(11);
  for (uint32_t b = 0; b < blocks; ++b) {
    ASSERT_TRUE(
        governed.vld->Write(static_cast<simdisk::Lba>(b) * 8, Pattern(4096, b)).ok());
    ASSERT_TRUE(plain.vld->Write(static_cast<simdisk::Lba>(b) * 8, Pattern(4096, b)).ok());
  }
  // Always-idle arrivals: every round ends in a generous idle gap, granted in full to the
  // governor on one rig and handed straight to RunIdle on the other.
  const common::Duration gap = common::Seconds(2);
  for (int round = 0; round < 10; ++round) {
    RoundOfForeground(*governed.vld, rng_a, blocks, round);
    RoundOfForeground(*plain.vld, rng_b, blocks, round);
    ASSERT_EQ(governed.clock.Now(), plain.clock.Now()) << "round " << round << " foreground";
    governor.RunBurst(gap);
    plain.vld->RunIdle(gap);
    ASSERT_EQ(governed.clock.Now(), plain.clock.Now()) << "round " << round << " idle";
  }

  // Bit-identical media: every sector of the physical disk, including map and checkpoint
  // regions, must match.
  const uint64_t sectors = governed.disk->SectorCount();
  std::vector<std::byte> a(governed.disk->SectorBytes());
  std::vector<std::byte> b(governed.disk->SectorBytes());
  for (uint64_t s = 0; s < sectors; ++s) {
    governed.disk->PeekMedia(s, a);
    plain.disk->PeekMedia(s, b);
    ASSERT_EQ(a, b) << "sector " << s;
  }
  EXPECT_EQ(governed.vld->compactor().stats().tracks_compacted,
            plain.vld->compactor().stats().tracks_compacted);
  EXPECT_EQ(governed.vld->compactor().stats().data_blocks_moved,
            plain.vld->compactor().stats().data_blocks_moved);
  EXPECT_EQ(governed.vld->compactor().stats().bursts_preempted, 0u);
  EXPECT_GT(governor.stats().idle_grants, 0u);
}

class GovernorTest : public ::testing::Test {
 protected:
  GovernorTest() : rig_() {}

  // Leaves the rig with compaction debt (empty tracks below the default target of 4) so
  // NeedsWork holds and grants are about policy, not about having nothing to do.
  void CreateDebt() {
    const uint32_t blocks = static_cast<uint32_t>(rig_.vld->logical_blocks() * 0.9);
    for (uint32_t b = 0; b < blocks; ++b) {
      ASSERT_TRUE(rig_.vld->Write(static_cast<simdisk::Lba>(b) * 8, Pattern(4096, b)).ok());
    }
    for (uint32_t b = 0; b < blocks; b += 2) {
      ASSERT_TRUE(rig_.vld->Trim(static_cast<simdisk::Lba>(b) * 8, 8).ok());
    }
    ASSERT_TRUE(rig_.vld->Checkpoint().ok());
    ASSERT_LT(rig_.vld->space().EmptyTrackCount(), 4u);
  }

  Rig rig_;
};

TEST_F(GovernorTest, NoGrantWhenNothingNeedsCompacting) {
  // Freshly formatted: no pinned sectors, plenty of empty tracks. Every grant must be zero,
  // exactly as RunIdle would be a no-op.
  CompactionGovernor governor(rig_.vld.get(), nullptr, {});
  rig_.clock.Advance(common::Seconds(1));
  EXPECT_EQ(governor.Grant(0), 0);
  EXPECT_EQ(governor.Grant(common::Milliseconds(10)), 0);
  EXPECT_EQ(governor.stats().bursts, 0u);
}

TEST_F(GovernorTest, IdleHintGrantsTheWholeGapFreeOfCredit) {
  CreateDebt();
  CompactionGovernor governor(rig_.vld.get(), nullptr, {});
  const common::Duration gap = common::Milliseconds(7);
  EXPECT_EQ(governor.Grant(gap), gap);
  EXPECT_EQ(governor.stats().idle_grants, 1u);
}

TEST_F(GovernorTest, CreditAccruesAtDutyAndCapsAtMaxBurst) {
  CreateDebt();
  GovernorConfig config;
  config.initial_duty = 0.10;
  config.max_burst = common::Milliseconds(25);
  config.low_water_tracks = 0;  // Exercise the credit path, not the pressure floor.
  CompactionGovernor governor(rig_.vld.get(), nullptr, config);
  ASSERT_EQ(governor.Grant(0), 0);  // First decision only seeds the clock baseline.
  // 100 ms at duty 0.10 accrues 10 ms of credit.
  rig_.clock.Advance(common::Milliseconds(100));
  const common::Duration grant = governor.Grant(0);
  EXPECT_GE(grant, common::Milliseconds(9));
  EXPECT_LE(grant, common::Milliseconds(11));
  // A long gap accrues far more than the cap; the burst stays bounded.
  rig_.clock.Advance(common::Seconds(10));
  EXPECT_EQ(governor.Grant(0), common::Milliseconds(25));
}

TEST_F(GovernorTest, BacksOffOnViolatingWindowAndRampsOnCleanOnes) {
  CreateDebt();
  obs::Timeline timeline({.window = common::Milliseconds(10)});
  obs::WindowedHistogram& latency = timeline.AddHistogram("latency");
  GovernorConfig config;
  config.slo_budget = common::Milliseconds(5);
  config.low_water_tracks = 0;  // Keep the pressure floor out of the way.
  CompactionGovernor governor(rig_.vld.get(), &timeline, config);
  governor.RegisterTimelineProbes(timeline, "");
  const double duty0 = governor.duty();

  // A violating window: p99 over budget. The next decision must cut the duty and grant 0.
  latency.Record(common::Milliseconds(20));
  rig_.clock.Advance(common::Milliseconds(10));
  timeline.Poll(rig_.clock.Now());
  rig_.clock.Advance(common::Seconds(1));  // Plenty of elapsed time: credit is not the gate.
  EXPECT_EQ(governor.Grant(0), 0);
  EXPECT_EQ(governor.stats().backoffs, 1u);
  EXPECT_LT(governor.duty(), duty0);
  const double backed_off = governor.duty();

  // Clean windows ramp the duty back up and grants resume.
  for (int i = 0; i < 3; ++i) {
    latency.Record(common::Milliseconds(1));
    rig_.clock.Advance(common::Milliseconds(10));
    timeline.Poll(rig_.clock.Now());
  }
  rig_.clock.Advance(common::Seconds(1));
  EXPECT_GT(governor.Grant(0), 0);
  EXPECT_GE(governor.stats().ramps, 3u);
  EXPECT_GT(governor.duty(), backed_off);

  // The governor's own decision series landed on the timeline.
  timeline.Finish(rig_.clock.Now());
  bool saw_decisions = false;
  for (const std::string& name : timeline.counter_names()) {
    saw_decisions = saw_decisions || name == "gov.decisions";
  }
  EXPECT_TRUE(saw_decisions);
  EXPECT_GE(timeline.GaugeIndex("gov.duty_ppm"), 0);
}

TEST_F(GovernorTest, PressureFloorOverridesBackoff) {
  CreateDebt();
  obs::Timeline timeline({.window = common::Milliseconds(10)});
  obs::WindowedHistogram& latency = timeline.AddHistogram("latency");
  GovernorConfig config;
  config.slo_budget = common::Milliseconds(5);
  config.low_water_tracks = 1000;  // Everything is below the floor: starvation imminent.
  CompactionGovernor governor(rig_.vld.get(), &timeline, config);

  latency.Record(common::Milliseconds(20));  // Violating window.
  rig_.clock.Advance(common::Milliseconds(10));
  timeline.Poll(rig_.clock.Now());
  const common::Duration grant = governor.Grant(0);
  EXPECT_GT(grant, 0);
  EXPECT_GE(grant, config.min_burst);
  EXPECT_EQ(governor.stats().pressure_overrides, 1u);
}

TEST(GovernedOpenLoopTest, GovernorHoldsFreeTracksWhereUngovernedDeclines) {
  // The mini steady-state-vs-death-spiral pair (the bench runs the long-horizon version):
  // same high-utilization open-loop diurnal workload, with and without the governor. Without
  // background compaction empty fill tracks drain away; the governor holds them at or above
  // its target's neighborhood while arrivals keep coming.
  struct Leg {
    uint64_t empties_before = 0;
    uint64_t empties_after = 0;
    uint64_t tracks_compacted = 0;
  };
  auto run = [](bool governed) {
    common::Clock clock;
    simdisk::SimDisk disk(simdisk::Truncated(simdisk::Hp97560(), 6), &clock);
    VldConfig config;
    config.queue_depth = 16;
    Vld vld(&disk, config);
    EXPECT_TRUE(vld.Format().ok());
    // Prepopulate well below capacity so the device starts with a reserve of empty fill
    // tracks; random updates then open holes everywhere while FillPick drains the reserve.
    const uint32_t region = static_cast<uint32_t>(vld.logical_blocks() * 0.55);
    std::vector<std::byte> payload(4096);
    for (uint32_t b = 0; b < region; ++b) {
      EXPECT_TRUE(vld.Write(static_cast<simdisk::Lba>(b) * 8, payload).ok());
    }
    workload::OpenLoopOptions options;
    options.process = workload::ArrivalProcess::kDiurnal;
    options.rate_ops_per_s = 40;
    options.diurnal_period = common::Seconds(2);
    options.diurnal_amplitude = 0.75;
    // 1100 arrivals at 40/s end the run ~27.5 s in — the back half of a diurnal cycle — so
    // the final reserve is sampled during a trough, after the governor has had arrival gaps
    // to rebuild, not at the instant a peak finished draining it.
    options.arrivals = 1100;
    options.region_blocks = region;
    options.max_batch = 8;
    options.seed = 3;
    // Latency feedback lets the duty cycle ramp during clean windows (and back off if the
    // bursts themselves push p99 over budget) — without it the governor is pinned at its
    // conservative initial duty.
    obs::Timeline timeline(obs::TimelineConfig{.window = common::Milliseconds(200)});
    obs::WindowedHistogram& latency = timeline.AddHistogram("latency");
    GovernorConfig gov_config;
    gov_config.slo_budget = common::Milliseconds(150);
    // Build a deeper reserve than the idle compactor's default target: under continuous load
    // the foreground drains whatever exists, so the governor aims high to keep the trough-time
    // surplus ahead of peak-time consumption.
    gov_config.target_empty_tracks = 8;
    CompactionGovernor governor(&vld, &timeline, gov_config);
    Leg leg;
    leg.empties_before = vld.space().EmptyTrackCount();
    auto result = workload::RunGovernedOpenLoop(vld, options, governed ? &governor : nullptr,
                                                &timeline, &latency);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    leg.empties_after = vld.space().EmptyTrackCount();
    leg.tracks_compacted = vld.compactor().stats().tracks_compacted;
    return leg;
  };
  const Leg with_governor = run(true);
  const Leg without_governor = run(false);
  // The ungoverned leg burns its fill-track reserve down; the governed leg reclaims tracks
  // while arrivals keep coming and ends with a healthier reserve.
  EXPECT_LT(without_governor.empties_after, without_governor.empties_before);
  EXPECT_GT(with_governor.empties_after, without_governor.empties_after);
  EXPECT_GE(with_governor.empties_after, 2u);
  EXPECT_GT(with_governor.tracks_compacted, 0u);
}

}  // namespace
}  // namespace vlog::core
