#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/core/vld.h"
#include "src/crashsim/crash_point.h"
#include "src/crashsim/harness.h"
#include "src/crashsim/scenarios.h"
#include "src/crashsim/write_trace.h"
#include "src/simdisk/disk_params.h"
#include "src/simdisk/sim_disk.h"

namespace vlog::crashsim {

// Base seed for the randomized parts of the sweeps (reorder sampling and torn/corrupt variant
// choice) and the optional single-ordinal replay. Overridable with --seed=N --point=K — the
// exact command a failing report's Summary() prints — so a violation replays exactly.
uint64_t g_sweep_seed = 1;
int64_t g_sweep_point = -1;

namespace {

// In --point=K replay mode only one crash point is recovered and checked, so per-recovery
// counters (park/scan/checkpoint tallies) lose their usual floors.
bool Replaying() { return g_sweep_point >= 0; }

constexpr uint32_t kSectorBytes = 512;
constexpr uint32_t kBlockSectors = 8;
constexpr size_t kBlockBytes = kBlockSectors * kSectorBytes;

std::vector<std::byte> Pattern(uint32_t tag, size_t bytes = kBlockBytes) {
  std::vector<std::byte> data(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::byte>((tag * 131u + i * 7u) & 0xFF);
  }
  return data;
}

// ---------------------------------------------------------------------------
// Crash-point enumeration.
// ---------------------------------------------------------------------------

WriteTrace MakeTrace(const std::vector<uint32_t>& sectors_per_write) {
  WriteTrace trace;
  trace.set_base(std::vector<std::byte>(kSectorBytes * 64, std::byte{0}));
  simdisk::Lba lba = 0;
  uint32_t tag = 1;
  for (uint32_t sectors : sectors_per_write) {
    trace.Append(lba, Pattern(tag++, sectors * kSectorBytes));
    lba += sectors;
  }
  return trace;
}

TEST(CrashPointTest, CoversEveryWriteBoundaryAndOnlyTearsMultiSectorWrites) {
  const WriteTrace trace = MakeTrace({1, 4, 1, 8, 1});
  const auto points = EnumerateCrashPoints(trace, kSectorBytes, EnumerateOptions{});

  uint64_t clean = 0, torn = 0, corrupt = 0;
  std::vector<bool> boundary_seen(trace.size() + 1, false);
  uint64_t prev = 0;
  for (const CrashPoint& p : points) {
    EXPECT_GE(p.writes_applied, prev) << "points must be ordered for the rolling sweep";
    prev = p.writes_applied;
    ASSERT_LE(p.writes_applied, trace.size());
    switch (p.kind) {
      case CrashKind::kClean:
        ++clean;
        boundary_seen[p.writes_applied] = true;
        break;
      case CrashKind::kTornPrefix:
      case CrashKind::kTornSuffix:
      case CrashKind::kTornRandom: {
        ++torn;
        ASSERT_LT(p.writes_applied, trace.size());
        const WriteRecord& rec = trace[p.writes_applied];
        EXPECT_GT(rec.Sectors(kSectorBytes), 1u)
            << "torn variants only make sense for multi-sector writes";
        if (p.kind != CrashKind::kTornRandom) {
          EXPECT_GT(p.keep_sectors, 0u);
          EXPECT_LT(p.keep_sectors, rec.Sectors(kSectorBytes));
        }
        break;
      }
      case CrashKind::kCorruptTail:
        ++corrupt;
        break;
      case CrashKind::kReorder:
        FAIL() << "EnumerateCrashPoints must not emit reorder points";
        break;
    }
  }
  for (size_t i = 0; i <= trace.size(); ++i) {
    EXPECT_TRUE(boundary_seen[i]) << "missing clean stop after write " << i;
  }
  EXPECT_GE(torn, 6u);  // Two multi-sector writes, >= 3 variants each.
  EXPECT_GE(corrupt, 1u);
}

TEST(CrashPointTest, TornStrideZeroDisablesTornVariants) {
  const WriteTrace trace = MakeTrace({4, 4, 4});
  EnumerateOptions opts;
  opts.torn_stride = 0;
  opts.corrupt_stride = 0;
  for (const CrashPoint& p : EnumerateCrashPoints(trace, kSectorBytes, opts)) {
    EXPECT_EQ(p.kind, CrashKind::kClean);
  }
}

TEST(CrashPointTest, ApplyTornPrefixKeepsLeadingSectorsOnly) {
  const WriteTrace trace = MakeTrace({4});
  std::vector<std::byte> image = trace.base();
  CrashPoint point;
  point.kind = CrashKind::kTornPrefix;
  point.keep_sectors = 1;
  ApplyCrashedWrite(image, trace[0], kSectorBytes, point);
  EXPECT_EQ(std::memcmp(image.data(), trace[0].data.data(), kSectorBytes), 0);
  for (size_t i = kSectorBytes; i < 4 * kSectorBytes; ++i) {
    ASSERT_EQ(image[i], std::byte{0}) << "sector beyond the torn prefix persisted";
  }
}

TEST(CrashPointTest, ApplyTornSuffixKeepsTrailingSectorsOnly) {
  const WriteTrace trace = MakeTrace({4});
  std::vector<std::byte> image = trace.base();
  CrashPoint point;
  point.kind = CrashKind::kTornSuffix;
  point.keep_sectors = 1;
  ApplyCrashedWrite(image, trace[0], kSectorBytes, point);
  for (size_t i = 0; i < 3 * kSectorBytes; ++i) {
    ASSERT_EQ(image[i], std::byte{0}) << "sector before the torn suffix persisted";
  }
  EXPECT_EQ(std::memcmp(image.data() + 3 * kSectorBytes,
                        trace[0].data.data() + 3 * kSectorBytes, kSectorBytes),
            0);
}

TEST(CrashPointTest, ApplyTornRandomIsDeterministicPerSeed) {
  const WriteTrace trace = MakeTrace({8});
  CrashPoint point;
  point.kind = CrashKind::kTornRandom;
  point.seed = 42;
  std::vector<std::byte> a = trace.base();
  std::vector<std::byte> b = trace.base();
  ApplyCrashedWrite(a, trace[0], kSectorBytes, point);
  ApplyCrashedWrite(b, trace[0], kSectorBytes, point);
  EXPECT_EQ(a, b);
  point.seed = 43;
  std::vector<std::byte> c = trace.base();
  ApplyCrashedWrite(c, trace[0], kSectorBytes, point);
  EXPECT_NE(a, c);  // Overwhelmingly likely for an 8-sector write.
}

TEST(CrashPointTest, ApplyCorruptTailDamagesLastSectorOnly) {
  const WriteTrace trace = MakeTrace({4});
  std::vector<std::byte> image = trace.base();
  CrashPoint point;
  point.kind = CrashKind::kCorruptTail;
  point.seed = 7;
  ApplyCrashedWrite(image, trace[0], kSectorBytes, point);
  EXPECT_EQ(std::memcmp(image.data(), trace[0].data.data(), 3 * kSectorBytes), 0);
  EXPECT_NE(std::memcmp(image.data() + 3 * kSectorBytes, trace[0].data.data() + 3 * kSectorBytes,
                        kSectorBytes),
            0);
}

// ---------------------------------------------------------------------------
// Reorder-point enumeration (write-back traces).
// ---------------------------------------------------------------------------

// A write-back trace with explicit barriers: `layout` lists epoch sizes, and a barrier is
// appended after each epoch except the last.
WriteTrace MakeWriteBackTrace(const std::vector<uint32_t>& epoch_sizes) {
  WriteTrace trace;
  trace.set_base(std::vector<std::byte>(kSectorBytes * 256, std::byte{0}));
  trace.set_write_back(true);
  simdisk::Lba lba = 0;
  uint32_t tag = 1;
  for (size_t e = 0; e < epoch_sizes.size(); ++e) {
    for (uint32_t i = 0; i < epoch_sizes[e]; ++i) {
      trace.Append(lba, Pattern(tag++, kSectorBytes), /*durable=*/false);
      lba += 1;
    }
    if (e + 1 < epoch_sizes.size()) {
      trace.AppendBarrier();
    }
  }
  return trace;
}

// Number of ordered subsets of an n-element set: sum over k of C(n,k)*k!.
uint64_t OrderedSubsets(uint64_t n) {
  uint64_t total = 0;
  for (uint64_t k = 0; k <= n; ++k) {
    uint64_t term = 1;
    for (uint64_t i = 0; i < k; ++i) {
      term *= n - i;
    }
    total += term;
  }
  return total;
}

TEST(ReorderPointTest, ExhaustsEveryOrderedSubsetPerEpoch) {
  const WriteTrace trace = MakeWriteBackTrace({3, 2});
  const auto points = EnumerateReorderPoints(trace, ReorderOptions{});
  // Epochs [0,3) and [3,5): 16 + 5 ordered subsets.
  EXPECT_EQ(points.size(), OrderedSubsets(3) + OrderedSubsets(2));
  std::set<std::pair<uint64_t, std::vector<uint64_t>>> distinct;
  for (const CrashPoint& p : points) {
    EXPECT_EQ(p.kind, CrashKind::kReorder);
    EXPECT_TRUE(p.writes_applied == 0 || p.writes_applied == 3);
    EXPECT_EQ(p.epoch_end, p.writes_applied == 0 ? 3u : 5u);
    std::set<uint64_t> seen;
    for (const uint64_t idx : p.extra) {
      EXPECT_GE(idx, p.writes_applied);
      EXPECT_LT(idx, p.epoch_end);
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index in one ordering";
    }
    EXPECT_TRUE(distinct.emplace(p.writes_applied, p.extra).second)
        << "duplicate ordering emitted";
  }
}

TEST(ReorderPointTest, ReturnsNothingForWriteThroughTraces) {
  WriteTrace trace = MakeWriteBackTrace({3, 2});
  trace.set_write_back(false);
  EXPECT_TRUE(EnumerateReorderPoints(trace, ReorderOptions{}).empty());
}

TEST(ReorderPointTest, SamplesLargeEpochsDeterministicallyPerSeed) {
  const WriteTrace trace = MakeWriteBackTrace({9});
  ReorderOptions opts;
  opts.seed = 5;
  const auto a = EnumerateReorderPoints(trace, opts);
  const auto b = EnumerateReorderPoints(trace, opts);
  ASSERT_EQ(a.size(), opts.samples_per_epoch);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].extra, b[i].extra) << "sampling must replay exactly for one seed";
    std::set<uint64_t> seen;
    for (const uint64_t idx : a[i].extra) {
      EXPECT_LT(idx, 9u);
      EXPECT_TRUE(seen.insert(idx).second);
    }
  }
  opts.seed = 6;
  const auto c = EnumerateReorderPoints(trace, opts);
  bool any_differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_differs = any_differs || a[i].extra != c[i].extra;
  }
  EXPECT_TRUE(any_differs) << "different seeds should draw different orderings";
}

TEST(ReorderPointTest, DurableWritesPersistInEveryOrdering) {
  WriteTrace trace;
  trace.set_base(std::vector<std::byte>(kSectorBytes * 16, std::byte{0}));
  trace.set_write_back(true);
  trace.Append(0, Pattern(1, kSectorBytes), /*durable=*/false);
  trace.Append(1, Pattern(2, kSectorBytes), /*durable=*/true);  // FUA
  trace.Append(2, Pattern(3, kSectorBytes), /*durable=*/false);
  const auto points = EnumerateReorderPoints(trace, ReorderOptions{});
  EXPECT_EQ(points.size(), OrderedSubsets(2));
  for (const CrashPoint& p : points) {
    ASSERT_FALSE(p.extra.empty());
    EXPECT_EQ(p.extra.front(), 1u) << "the durable write must always be applied (first)";
  }
}

// ---------------------------------------------------------------------------
// Scenario sweeps. Together the four scenarios must explore >= 500 distinct
// crash points with >= 100 torn-write variants (per-test floors sum past that),
// with zero invariant violations.
// ---------------------------------------------------------------------------

CrashSweepOptions SeededSweepOptions() {
  CrashSweepOptions options;
  options.enumerate.seed = g_sweep_seed;
  options.reorder.seed = g_sweep_seed;
  options.only_ordinal = g_sweep_point;
  return options;
}

CrashSweepReport SweepVldScenario(VldScenario scenario) {
  VldCrashSim sim(CrashSimDiskParams(), CrashSimVldConfig());
  const common::Status recorded = RecordVldScenario(scenario, sim);
  EXPECT_TRUE(recorded.ok()) << recorded.ToString();
  return sim.Sweep(SeededSweepOptions());
}

TEST(CrashSweepTest, UfsOnVldScenarioHasNoViolations) {
  const CrashSweepReport report = SweepVldScenario(VldScenario::kUfsOnVld);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.points, 150u) << report.Summary();
  EXPECT_GE(report.torn_points, 30u) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.park_recoveries, 0u) << report.Summary();
    EXPECT_GT(report.scan_recoveries, 0u) << report.Summary();
  }
}

TEST(CrashSweepTest, CompactorActiveScenarioHasNoViolations) {
  const CrashSweepReport report = SweepVldScenario(VldScenario::kCompactorActive);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.points, 150u) << report.Summary();
  EXPECT_GE(report.torn_points, 30u) << report.Summary();
  // The workload never parks, so every recovery takes the full-disk scan path.
  EXPECT_EQ(report.park_recoveries, 0u) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.scan_recoveries, 0u) << report.Summary();
  }
}

// Governed compaction bursts interleaved with queued group commits: crash points cut bursts
// at their checkpoint, between relocations, and at the mid-track preemption boundary, and the
// recovered device must still expose every acknowledged batch all-old-or-all-new. Failures
// replay with --seed/--point like every sweep here.
TEST(CrashSweepTest, CompactionUnderLoadScenarioHasNoViolations) {
  const CrashSweepReport report = SweepVldScenario(VldScenario::kCompactionUnderLoad);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.points, 150u) << report.Summary();
  EXPECT_GE(report.torn_points, 30u) << report.Summary();
  // The workload never parks, so every recovery takes the full-disk scan path.
  EXPECT_EQ(report.park_recoveries, 0u) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.scan_recoveries, 0u) << report.Summary();
  }
}

TEST(CrashSweepTest, CheckpointInterruptedScenarioHasNoViolations) {
  const CrashSweepReport report = SweepVldScenario(VldScenario::kCheckpointInterrupted);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.points, 100u) << report.Summary();
  EXPECT_GE(report.torn_points, 20u) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.checkpoint_recoveries, 0u) << report.Summary();
  }
}

// Tentpole acceptance: batches of queued writes committing through packed group transactions
// stay all-old-or-all-new per acknowledged batch across every crash point, including tears
// inside the multi-sector packed map write itself.
TEST(CrashSweepTest, QueuedGroupCommitScenarioHasNoViolations) {
  const CrashSweepReport report = SweepVldScenario(VldScenario::kQueuedGroupCommit);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.points, 150u) << report.Summary();
  EXPECT_GE(report.torn_points, 30u) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.park_recoveries, 0u) << report.Summary();
    EXPECT_GT(report.scan_recoveries, 0u) << report.Summary();
  }
}

// Golden trace equality: recording the same scenario twice must produce byte-identical
// traces — every record's address, payload bytes, durability flag, and disk tag, plus the
// barrier positions and the base image. This pins the arena-backed payload storage (records
// hold views into the trace's arena, not their own vectors): any aliasing or copy bug in the
// arena shows up here as payload bytes diverging between two identical recordings.
TEST(WriteTraceGolden, SameScenarioRecordsByteIdenticalTraces) {
  VldCrashSim a(CrashSimDiskParams(), CrashSimVldConfig());
  VldCrashSim b(CrashSimDiskParams(), CrashSimVldConfig());
  ASSERT_TRUE(RecordVldScenario(VldScenario::kQueuedGroupCommit, a).ok());
  ASSERT_TRUE(RecordVldScenario(VldScenario::kQueuedGroupCommit, b).ok());
  const WriteTrace& ta = a.trace();
  const WriteTrace& tb = b.trace();
  ASSERT_GT(ta.size(), 50u) << "golden scenario must exercise a real write volume";
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i].lba, tb[i].lba) << "record " << i;
    ASSERT_EQ(ta[i].durable, tb[i].durable) << "record " << i;
    ASSERT_EQ(ta[i].disk, tb[i].disk) << "record " << i;
    ASSERT_EQ(ta[i].data.size(), tb[i].data.size()) << "record " << i;
    ASSERT_EQ(std::memcmp(ta[i].data.data(), tb[i].data.data(), ta[i].data.size()), 0)
        << "payload bytes diverged at record " << i;
  }
  EXPECT_EQ(ta.barriers(), tb.barriers());
  EXPECT_EQ(ta.write_back(), tb.write_back());
  EXPECT_EQ(ta.base(), tb.base());
}

// Queued reads interleaved with queued writes: reads are verified against the shadow at record
// time (same-batch RAW forwarding, unmapped and freshly-trimmed blocks reading zeros) and are
// recorded as nothing, so a green sweep proves read traffic never dirtied crash-visible state.
TEST(CrashSweepTest, QueuedMixedReadWriteScenarioHasNoViolations) {
  VldCrashSim sim(CrashSimDiskParams(), CrashSimVldConfig());
  const common::Status recorded = RecordVldScenario(VldScenario::kQueuedMixedReadWrite, sim);
  ASSERT_TRUE(recorded.ok()) << recorded.ToString();
  const CrashSweepReport report = sim.Sweep(SeededSweepOptions());
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.points, 150u) << report.Summary();
  EXPECT_GE(report.torn_points, 30u) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.park_recoveries, 0u) << report.Summary();
    EXPECT_GT(report.scan_recoveries, 0u) << report.Summary();
  }
}

// Satellite (b): the §4.4 LFS stack (log-structured logical disk + fs) running on the VLD, so
// the swept traffic is multi-block segment writes.
TEST(CrashSweepTest, LfsOnVldScenarioHasNoViolations) {
  const CrashSweepReport report = SweepVldScenario(VldScenario::kLfsOnVld);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.points, 100u) << report.Summary();
  EXPECT_GE(report.torn_points, 20u) << report.Summary();
}

TEST(CrashSweepTest, VlfsScenarioHasNoViolations) {
  VlfsCrashSim sim(CrashSimDiskParams(), CrashSimVlfsConfig());
  const common::Status recorded = sim.Record(VlfsScenarioScript());
  ASSERT_TRUE(recorded.ok()) << recorded.ToString();
  const CrashSweepReport report = sim.Sweep(SeededSweepOptions());
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.points, 100u) << report.Summary();
  EXPECT_GE(report.torn_points, 20u) << report.Summary();
}

// ---------------------------------------------------------------------------
// Reordering-aware sweeps: the same six scenarios recorded on a disk with a
// volatile write-back cache. The barrier discipline in the VLD/VLFS must keep
// every invariant across arbitrary admissible destage subsets/orderings.
// Together these sweeps must explore >= 500 reorder points (per-test floors
// sum past that) with zero violations.
// ---------------------------------------------------------------------------

CrashSweepReport SweepCachedVldScenario(VldScenario scenario) {
  VldCrashSim sim(CrashSimCachedDiskParams(), CrashSimVldConfig());
  const common::Status recorded = RecordVldScenario(scenario, sim);
  EXPECT_TRUE(recorded.ok()) << recorded.ToString();
  const CrashSweepReport report = sim.Sweep(SeededSweepOptions());
  std::cout << "[ reorder ] " << VldScenarioName(scenario) << ": " << report.Summary() << "\n";
  return report;
}

TEST(ReorderSweepTest, UfsOnVldScenarioHasNoViolations) {
  const CrashSweepReport report = SweepCachedVldScenario(VldScenario::kUfsOnVld);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.reorder_points, 100u) << report.Summary();
}

TEST(ReorderSweepTest, CompactorActiveScenarioHasNoViolations) {
  const CrashSweepReport report = SweepCachedVldScenario(VldScenario::kCompactorActive);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.reorder_points, 100u) << report.Summary();
}

TEST(ReorderSweepTest, CompactionUnderLoadScenarioHasNoViolations) {
  const CrashSweepReport report = SweepCachedVldScenario(VldScenario::kCompactionUnderLoad);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.reorder_points, 100u) << report.Summary();
}

TEST(ReorderSweepTest, CheckpointInterruptedScenarioHasNoViolations) {
  const CrashSweepReport report = SweepCachedVldScenario(VldScenario::kCheckpointInterrupted);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.reorder_points, 100u) << report.Summary();
}

TEST(ReorderSweepTest, QueuedGroupCommitScenarioHasNoViolations) {
  const CrashSweepReport report = SweepCachedVldScenario(VldScenario::kQueuedGroupCommit);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.reorder_points, 100u) << report.Summary();
}

// Same mixed scenario on the write-back cached disk: queued reads of cache-dirty extents see
// the volatile acknowledged bytes at record time, and the kReorder sweep then re-verifies the
// write-only op history across destage subsets/orderings — reads must not have perturbed it.
TEST(ReorderSweepTest, QueuedMixedReadWriteScenarioHasNoViolations) {
  const CrashSweepReport report = SweepCachedVldScenario(VldScenario::kQueuedMixedReadWrite);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.reorder_points, 100u) << report.Summary();
}

TEST(ReorderSweepTest, LfsOnVldScenarioHasNoViolations) {
  const CrashSweepReport report = SweepCachedVldScenario(VldScenario::kLfsOnVld);
  EXPECT_TRUE(report.ok()) << report.Summary();
  // The LFS stack batches into few large segment writes, so fewer epochs than the others.
  EXPECT_GE(report.reorder_points, 50u) << report.Summary();
}

TEST(ReorderSweepTest, VlfsScenarioHasNoViolations) {
  VlfsCrashSim sim(CrashSimCachedDiskParams(), CrashSimVlfsConfig());
  const common::Status recorded = sim.Record(VlfsScenarioScript());
  ASSERT_TRUE(recorded.ok()) << recorded.ToString();
  const CrashSweepReport report = sim.Sweep(SeededSweepOptions());
  std::cout << "[ reorder ] vlfs: " << report.Summary() << "\n";
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.reorder_points, 100u) << report.Summary();
}

// Negative control: with the VLD's durability barriers disabled on a cached disk, the sweep
// must catch real consistency violations — proving the reorder model actually bites and the
// green runs above are meaningful.
TEST(ReorderSweepTest, SweepDetectsMissingBarriers) {
  if (Replaying()) {
    GTEST_SKIP() << "negative control needs the full point sweep, not a --point replay";
  }
  core::VldConfig config = CrashSimVldConfig();
  config.barriers = false;
  VldCrashSim sim(CrashSimCachedDiskParams(), config);
  ASSERT_TRUE(RecordVldScenario(VldScenario::kCheckpointInterrupted, sim).ok());
  const CrashSweepReport report = sim.Sweep(SeededSweepOptions());
  EXPECT_GT(report.reorder_points, 0u) << report.Summary();
  EXPECT_GT(report.violations, 0u)
      << "a barrier-less device on a write-back cache must fail the reorder sweep\n"
      << report.Summary();
}

// ---------------------------------------------------------------------------
// NVM-staged sweeps: the same scenarios with the write-ahead staging tier
// layered over the Vld. At every disk crash point the exact NVM image at that
// cut is reconstructed and the stage recovered over the recovered Vld; all
// content checks read through the stage, so a write acknowledged at NVM
// latency must survive every point or the sweep fails. On top of clean points
// whose final NVM append coincides with the cut, torn-NVM-tail variants are
// synthesized at cache-line granularity — the second axis of the crash-state
// matrix. --seed/--point replay works unchanged.
// ---------------------------------------------------------------------------

CrashSweepReport SweepStagedVldScenario(VldScenario scenario, bool cached = false) {
  VldCrashSim sim(cached ? CrashSimCachedDiskParams() : CrashSimDiskParams(),
                  CrashSimVldConfig());
  sim.EnableStage(CrashSimNvmStageConfig(), CrashSimNvmParams());
  const common::Status recorded = RecordVldScenario(scenario, sim);
  EXPECT_TRUE(recorded.ok()) << recorded.ToString();
  return sim.Sweep(SeededSweepOptions());
}

// The stage-focused scenario: staged bursts, conflict-inducing direct writes and trims,
// destage pumps, a queued mixed batch, and a staged-residue tail whose acked writes exist
// ONLY in the NVM log when the trace ends.
TEST(NvmStagedSweepTest, NvmStagedWritesScenarioHasNoViolations) {
  const CrashSweepReport report = SweepStagedVldScenario(VldScenario::kNvmStagedWrites);
  EXPECT_TRUE(report.ok()) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.nvm_points, 0u) << report.Summary();
    EXPECT_GT(report.nvm_torn_points, 0u) << report.Summary();
  }
}

// Reorder x stage: the cached disk's destage subsets compose with NVM replay.
TEST(NvmStagedSweepTest, NvmStagedWritesCachedScenarioHasNoViolations) {
  const CrashSweepReport report =
      SweepStagedVldScenario(VldScenario::kNvmStagedWrites, /*cached=*/true);
  EXPECT_TRUE(report.ok()) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.reorder_points, 0u) << report.Summary();
    EXPECT_GT(report.nvm_points, 0u) << report.Summary();
  }
}

// Every pre-existing scenario re-swept with the stage layered on: the staging tier must be
// transparent to UFS, LFS, compaction, checkpoints, and the queued paths alike.
TEST(NvmStagedSweepTest, UfsOnVldStagedHasNoViolations) {
  const CrashSweepReport report = SweepStagedVldScenario(VldScenario::kUfsOnVld);
  EXPECT_TRUE(report.ok()) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.nvm_points, 0u) << report.Summary();
  }
}

TEST(NvmStagedSweepTest, CompactorActiveStagedHasNoViolations) {
  const CrashSweepReport report = SweepStagedVldScenario(VldScenario::kCompactorActive);
  EXPECT_TRUE(report.ok()) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.nvm_points, 0u) << report.Summary();
  }
}

TEST(NvmStagedSweepTest, CompactionUnderLoadStagedHasNoViolations) {
  const CrashSweepReport report = SweepStagedVldScenario(VldScenario::kCompactionUnderLoad);
  EXPECT_TRUE(report.ok()) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.nvm_points, 0u) << report.Summary();
  }
}

TEST(NvmStagedSweepTest, CheckpointInterruptedStagedHasNoViolations) {
  const CrashSweepReport report = SweepStagedVldScenario(VldScenario::kCheckpointInterrupted);
  EXPECT_TRUE(report.ok()) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.nvm_points, 0u) << report.Summary();
  }
}

TEST(NvmStagedSweepTest, QueuedGroupCommitStagedHasNoViolations) {
  const CrashSweepReport report = SweepStagedVldScenario(VldScenario::kQueuedGroupCommit);
  EXPECT_TRUE(report.ok()) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.nvm_points, 0u) << report.Summary();
  }
}

TEST(NvmStagedSweepTest, QueuedMixedReadWriteStagedHasNoViolations) {
  const CrashSweepReport report = SweepStagedVldScenario(VldScenario::kQueuedMixedReadWrite);
  EXPECT_TRUE(report.ok()) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.nvm_points, 0u) << report.Summary();
  }
}

TEST(NvmStagedSweepTest, LfsOnVldStagedHasNoViolations) {
  const CrashSweepReport report = SweepStagedVldScenario(VldScenario::kLfsOnVld);
  EXPECT_TRUE(report.ok()) << report.Summary();
  if (!Replaying()) {
    EXPECT_GT(report.nvm_points, 0u) << report.Summary();
  }
}

// ---------------------------------------------------------------------------
// Parallel-sweep determinism: sharding a sweep across worker threads must be
// invisible in the report. Every crash point's ordinal, image, and variant
// seed are fixed at enumeration time, so the merged report at any worker
// count has to be byte-identical to the serial one — same counters, same
// violation details, same per-point recovery times, same Summary() text.
// ---------------------------------------------------------------------------

void ExpectIdenticalReports(const CrashSweepReport& serial, const CrashSweepReport& sharded,
                            uint32_t workers) {
  EXPECT_EQ(serial.points, sharded.points) << "workers=" << workers;
  EXPECT_EQ(serial.clean_points, sharded.clean_points) << "workers=" << workers;
  EXPECT_EQ(serial.torn_points, sharded.torn_points) << "workers=" << workers;
  EXPECT_EQ(serial.corrupt_points, sharded.corrupt_points) << "workers=" << workers;
  EXPECT_EQ(serial.reorder_points, sharded.reorder_points) << "workers=" << workers;
  EXPECT_EQ(serial.nvm_points, sharded.nvm_points) << "workers=" << workers;
  EXPECT_EQ(serial.nvm_torn_points, sharded.nvm_torn_points) << "workers=" << workers;
  EXPECT_EQ(serial.seed, sharded.seed) << "workers=" << workers;
  EXPECT_EQ(serial.violations, sharded.violations) << "workers=" << workers;
  EXPECT_EQ(serial.violation_details, sharded.violation_details) << "workers=" << workers;
  EXPECT_EQ(serial.first_violation_ordinal, sharded.first_violation_ordinal)
      << "workers=" << workers;
  EXPECT_EQ(serial.park_recoveries, sharded.park_recoveries) << "workers=" << workers;
  EXPECT_EQ(serial.scan_recoveries, sharded.scan_recoveries) << "workers=" << workers;
  EXPECT_EQ(serial.checkpoint_recoveries, sharded.checkpoint_recoveries)
      << "workers=" << workers;
  EXPECT_EQ(serial.rolled_back_recoveries, sharded.rolled_back_recoveries)
      << "workers=" << workers;
  EXPECT_EQ(serial.repaired_pieces, sharded.repaired_pieces) << "workers=" << workers;
  ASSERT_EQ(serial.recovery_times.size(), sharded.recovery_times.size())
      << "workers=" << workers;
  for (size_t i = 0; i < serial.recovery_times.size(); ++i) {
    EXPECT_EQ(serial.recovery_times[i], sharded.recovery_times[i])
        << "workers=" << workers << " point " << i;
  }
  EXPECT_EQ(serial.Summary(), sharded.Summary()) << "workers=" << workers;
}

TEST(ParallelSweepTest, WorkerCountIsInvisibleInTheReport) {
  if (Replaying()) {
    GTEST_SKIP() << "determinism comparison needs the full point sweep, not a --point replay";
  }
  // Write-back cache so the sweep includes reorder points — the variant kind whose
  // per-point seeding is easiest to get wrong under sharding.
  VldCrashSim sim(CrashSimCachedDiskParams(), CrashSimVldConfig());
  ASSERT_TRUE(RecordVldScenario(VldScenario::kQueuedGroupCommit, sim).ok());
  CrashSweepOptions options = SeededSweepOptions();
  options.workers = 1;
  const CrashSweepReport serial = sim.Sweep(options);
  ASSERT_GT(serial.points, 100u) << serial.Summary();
  EXPECT_TRUE(serial.ok()) << serial.Summary();
  for (const uint32_t workers : {2u, 8u}) {
    options.workers = workers;
    ExpectIdenticalReports(serial, sim.Sweep(options), workers);
  }
}

TEST(ParallelSweepTest, WorkerCountIsInvisibleWhenViolationsFire) {
  if (Replaying()) {
    GTEST_SKIP() << "determinism comparison needs the full point sweep, not a --point replay";
  }
  // The violating negative-control configuration: barrier-less VLD on a cached disk. The
  // details list, first ordinal, and detail truncation must all merge identically, which
  // exercises the report-merge path the all-green test above never reaches.
  core::VldConfig config = CrashSimVldConfig();
  config.barriers = false;
  VldCrashSim sim(CrashSimCachedDiskParams(), config);
  ASSERT_TRUE(RecordVldScenario(VldScenario::kCheckpointInterrupted, sim).ok());
  CrashSweepOptions options = SeededSweepOptions();
  options.workers = 1;
  const CrashSweepReport serial = sim.Sweep(options);
  ASSERT_GT(serial.violations, 0u) << serial.Summary();
  for (const uint32_t workers : {2u, 8u}) {
    options.workers = workers;
    ExpectIdenticalReports(serial, sim.Sweep(options), workers);
  }
}

// Sharding must stay invisible with the staged matrices in play too: the rolling NVM image
// and undo buffer are rebuilt per shard, and the per-point nvm counters merge in ordinal
// order.
TEST(ParallelSweepTest, WorkerCountIsInvisibleInStagedReports) {
  if (Replaying()) {
    GTEST_SKIP() << "determinism comparison needs the full point sweep, not a --point replay";
  }
  VldCrashSim sim(CrashSimDiskParams(), CrashSimVldConfig());
  sim.EnableStage(CrashSimNvmStageConfig(), CrashSimNvmParams());
  ASSERT_TRUE(RecordVldScenario(VldScenario::kNvmStagedWrites, sim).ok());
  CrashSweepOptions options = SeededSweepOptions();
  options.workers = 1;
  const CrashSweepReport serial = sim.Sweep(options);
  EXPECT_TRUE(serial.ok()) << serial.Summary();
  ASSERT_GT(serial.nvm_torn_points, 0u) << serial.Summary();
  for (const uint32_t workers : {2u, 8u}) {
    options.workers = workers;
    ExpectIdenticalReports(serial, sim.Sweep(options), workers);
  }
}

// ---------------------------------------------------------------------------
// Deterministic fault-injection recovery tests: Trim + WriteAtomic
// interleavings, and torn checkpoints (the double-buffer regression).
// ---------------------------------------------------------------------------

class CrashRecoveryTest : public ::testing::Test {
 protected:
  CrashRecoveryTest() { Reset(); }

  void Reset() {
    clock_ = common::Clock();
    disk_ = std::make_unique<simdisk::SimDisk>(CrashSimDiskParams(), &clock_);
    vld_ = std::make_unique<core::Vld>(disk_.get(), CrashSimVldConfig());
    ASSERT_TRUE(vld_->Format().ok());
  }

  // Power-cycle: drop any armed fault and re-attach a fresh instance to the media.
  core::VldRecoveryInfo Reopen() {
    disk_->SetWriteFault(std::nullopt);
    vld_ = std::make_unique<core::Vld>(disk_.get(), CrashSimVldConfig());
    auto info = vld_->Recover();
    EXPECT_TRUE(info.ok()) << info.status().ToString();
    return info.ok() ? info.value() : core::VldRecoveryInfo{};
  }

  std::vector<std::byte> ReadBlock(uint32_t block) {
    std::vector<std::byte> out(kBlockBytes);
    EXPECT_TRUE(vld_->Read(static_cast<simdisk::Lba>(block) * kBlockSectors, out).ok());
    return out;
  }

  void WriteBlock(uint32_t block, uint32_t tag) {
    ASSERT_TRUE(
        vld_->Write(static_cast<simdisk::Lba>(block) * kBlockSectors, Pattern(tag)).ok());
  }

  common::Clock clock_;
  std::unique_ptr<simdisk::SimDisk> disk_;
  std::unique_ptr<core::Vld> vld_;
};

TEST_F(CrashRecoveryTest, TrimmedBlockDoesNotResurrectAcrossScanRecovery) {
  WriteBlock(5, 1);
  ASSERT_TRUE(vld_->Trim(5 * kBlockSectors, kBlockSectors).ok());
  const auto info = Reopen();  // No park: recovery must take the scan path.
  EXPECT_TRUE(info.used_scan);
  EXPECT_EQ(ReadBlock(5), std::vector<std::byte>(kBlockBytes, std::byte{0}));
}

TEST_F(CrashRecoveryTest, TrimmedBlockDoesNotResurrectAcrossParkRecovery) {
  WriteBlock(5, 1);
  ASSERT_TRUE(vld_->Trim(5 * kBlockSectors, kBlockSectors).ok());
  ASSERT_TRUE(vld_->Park().ok());
  const auto info = Reopen();
  EXPECT_FALSE(info.used_scan);
  EXPECT_EQ(ReadBlock(5), std::vector<std::byte>(kBlockBytes, std::byte{0}));
}

// Crash a three-extent WriteAtomic after every possible number of completed media writes.
// Every failing cut must leave all three extents at their pre-transaction contents; the first
// non-failing cut means the transaction committed and all three must read the new contents.
TEST_F(CrashRecoveryTest, InterruptedWriteAtomicIsAllOrNothing) {
  constexpr uint32_t kBlocks[] = {1, 120, 300};  // Spread across map pieces.
  bool committed = false;
  uint64_t failing_cuts = 0;
  for (uint64_t cut = 0; cut < 64 && !committed; ++cut) {
    Reset();
    for (uint32_t b : kBlocks) WriteBlock(b, 10 + b);
    const auto d0 = Pattern(100), d1 = Pattern(101), d2 = Pattern(102);
    const core::Vld::AtomicWrite writes[] = {
        {kBlocks[0] * kBlockSectors, d0},
        {kBlocks[1] * kBlockSectors, d1},
        {kBlocks[2] * kBlockSectors, d2},
    };
    disk_->SetWriteFault(simdisk::SimDisk::WriteFault{
        .mode = simdisk::SimDisk::WriteFaultMode::kFailStop, .after_writes = cut});
    const common::Status status = vld_->WriteAtomic(writes);
    Reopen();
    if (status.ok()) {
      committed = true;
      EXPECT_EQ(ReadBlock(kBlocks[0]), d0);
      EXPECT_EQ(ReadBlock(kBlocks[1]), d1);
      EXPECT_EQ(ReadBlock(kBlocks[2]), d2);
    } else {
      ++failing_cuts;
      for (uint32_t b : kBlocks) {
        EXPECT_EQ(ReadBlock(b), Pattern(10 + b)) << "extent " << b << " not rolled back at cut "
                                                 << cut;
      }
    }
  }
  EXPECT_TRUE(committed) << "WriteAtomic never ran to completion within 64 media writes";
  EXPECT_GE(failing_cuts, 3u);  // At least the three data-block writes precede the commit.
}

TEST_F(CrashRecoveryTest, InterruptedAtomicOverTrimmedBlockStaysTrimmed) {
  WriteBlock(7, 1);
  ASSERT_TRUE(vld_->Trim(7 * kBlockSectors, kBlockSectors).ok());
  WriteBlock(9, 2);
  const auto d7 = Pattern(200), d9 = Pattern(201);
  const core::Vld::AtomicWrite writes[] = {
      {7 * kBlockSectors, d7},
      {9 * kBlockSectors, d9},
  };
  // Fail-stop before the commit record: two data-block writes land, the map append does not.
  disk_->SetWriteFault(simdisk::SimDisk::WriteFault{
      .mode = simdisk::SimDisk::WriteFaultMode::kFailStop, .after_writes = 2});
  EXPECT_FALSE(vld_->WriteAtomic(writes).ok());
  Reopen();
  // The trim must hold: neither the pre-trim contents nor the crashed write may surface.
  EXPECT_EQ(ReadBlock(7), std::vector<std::byte>(kBlockBytes, std::byte{0}));
  EXPECT_EQ(ReadBlock(9), Pattern(2));
}

TEST_F(CrashRecoveryTest, CorruptedCommitRecordRollsBackTransaction) {
  WriteBlock(3, 1);
  const auto d3 = Pattern(300);
  const core::Vld::AtomicWrite writes[] = {{3 * kBlockSectors, d3}};
  // Let the data block land, then corrupt whichever sector carries the commit record; the CRC
  // must reject it during recovery.
  disk_->SetWriteFault(simdisk::SimDisk::WriteFault{
      .mode = simdisk::SimDisk::WriteFaultMode::kCorruptTail, .after_writes = 1, .seed = 9});
  EXPECT_FALSE(vld_->WriteAtomic(writes).ok());
  Reopen();
  EXPECT_EQ(ReadBlock(3), Pattern(1));
}

// Regression for the double-buffered checkpoint: a crash anywhere inside Checkpoint() must
// leave every acknowledged block readable, whatever mix of checkpoint sectors persisted.
TEST_F(CrashRecoveryTest, CrashAnywhereInsideCheckpointPreservesData) {
  constexpr uint32_t kPrimed = 20;
  bool checkpoint_succeeded = false;
  for (uint64_t cut = 0; cut < 32 && !checkpoint_succeeded; ++cut) {
    Reset();
    for (uint32_t b = 0; b < kPrimed; ++b) WriteBlock(b, b + 1);
    disk_->SetWriteFault(simdisk::SimDisk::WriteFault{
        .mode = simdisk::SimDisk::WriteFaultMode::kFailStop, .after_writes = cut});
    checkpoint_succeeded = vld_->Checkpoint().ok();
    Reopen();
    for (uint32_t b = 0; b < kPrimed; ++b) {
      EXPECT_EQ(ReadBlock(b), Pattern(b + 1)) << "block " << b << " lost at checkpoint cut "
                                              << cut;
    }
    // The recovered instance must still accept writes.
    WriteBlock(kPrimed + 1, 99);
    EXPECT_EQ(ReadBlock(kPrimed + 1), Pattern(99));
  }
  EXPECT_TRUE(checkpoint_succeeded) << "Checkpoint never completed within 32 media writes";
}

// A torn *second* checkpoint must never damage the first one: the previous slot's state has to
// survive, including updates that committed after it.
TEST_F(CrashRecoveryTest, TornSecondCheckpointFallsBackToPreviousState) {
  constexpr uint32_t kPrimed = 12;
  for (uint64_t cut = 0; cut < 8; ++cut) {
    Reset();
    for (uint32_t b = 0; b < kPrimed; ++b) WriteBlock(b, b + 1);
    ASSERT_TRUE(vld_->Checkpoint().ok());
    for (uint32_t b = 0; b < 4; ++b) WriteBlock(b, 50 + b);  // Post-checkpoint updates.
    disk_->SetWriteFault(simdisk::SimDisk::WriteFault{
        .mode = simdisk::SimDisk::WriteFaultMode::kTornPrefix,
        .after_writes = cut,
        .keep_sectors = 2,
        .seed = cut + 1});
    const bool second_ok = vld_->Checkpoint().ok();
    Reopen();
    for (uint32_t b = 0; b < kPrimed; ++b) {
      const uint32_t tag = b < 4 ? 50 + b : b + 1;
      EXPECT_EQ(ReadBlock(b), Pattern(tag))
          << "block " << b << " wrong after torn second checkpoint (cut " << cut
          << ", second checkpoint " << (second_ok ? "acked" : "failed") << ")";
    }
  }
}

}  // namespace
}  // namespace vlog::crashsim

// Custom main so a sweep failure is replayable: rerun with the --seed=N echoed in the failing
// report's summary.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      vlog::crashsim::g_sweep_seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--point=", 8) == 0) {
      vlog::crashsim::g_sweep_point = std::strtoll(argv[i] + 8, nullptr, 10);
    }
  }
  return RUN_ALL_TESTS();
}
