#include "src/obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/rng.h"

namespace vlog::obs {
namespace {

TEST(HistogramBuckets, SmallValuesGetExactBuckets) {
  // Values below 2^(kFirstOctave+1) = 32 land in width-1 buckets: index == value.
  for (int64_t v = 0; v < 32; ++v) {
    const uint32_t idx = LatencyHistogram::BucketIndex(v);
    EXPECT_EQ(LatencyHistogram::BucketLower(idx), v);
    EXPECT_EQ(LatencyHistogram::BucketUpper(idx), v + 1);
  }
}

TEST(HistogramBuckets, BoundariesArePowerOfTwoOctaves) {
  // Each octave [2^k, 2^(k+1)) splits into 16 linear sub-buckets of width 2^k/16.
  EXPECT_EQ(LatencyHistogram::BucketIndex(31) + 1, LatencyHistogram::BucketIndex(32));
  for (const int64_t octave_start : {32ll, 64ll, 1024ll, 1ll << 20, 1ll << 40}) {
    const uint32_t first = LatencyHistogram::BucketIndex(octave_start);
    const int64_t width = octave_start / LatencyHistogram::kSubBuckets;
    EXPECT_EQ(LatencyHistogram::BucketLower(first), octave_start);
    EXPECT_EQ(LatencyHistogram::BucketUpper(first), octave_start + width);
    // Last value of the sub-bucket maps to the same bucket; first of the next does not.
    EXPECT_EQ(LatencyHistogram::BucketIndex(octave_start + width - 1), first);
    EXPECT_EQ(LatencyHistogram::BucketIndex(octave_start + width), first + 1);
    // 16 sub-buckets later we are at the next octave.
    EXPECT_EQ(LatencyHistogram::BucketLower(first + LatencyHistogram::kSubBuckets),
              2 * octave_start);
  }
}

TEST(HistogramBuckets, EveryValueFallsInsideItsBucket) {
  common::Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    // Spread across magnitudes: random octave, random offset within it.
    const int64_t v = static_cast<int64_t>(rng.Below(1ull << (5 + rng.Below(50))));
    const uint32_t idx = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(idx, LatencyHistogram::kNumBuckets);
    EXPECT_GE(v, LatencyHistogram::BucketLower(idx)) << v;
    EXPECT_LT(v, LatencyHistogram::BucketUpper(idx)) << v;
  }
}

TEST(HistogramBuckets, RelativeErrorBoundedBySubBucketWidth) {
  // The design contract: bucket width / lower bound <= 1/16 for values >= 32.
  for (const int64_t v : {100ll, 5000ll, 123456789ll, 1ll << 45}) {
    const uint32_t idx = LatencyHistogram::BucketIndex(v);
    const int64_t lo = LatencyHistogram::BucketLower(idx);
    const int64_t hi = LatencyHistogram::BucketUpper(idx);
    EXPECT_LE(static_cast<double>(hi - lo) / static_cast<double>(lo),
              1.0 / LatencyHistogram::kSubBuckets);
  }
}

TEST(HistogramPercentile, ExactAtExtremesAndEmpty) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(50), 0.0);
  h.Record(700);
  h.Record(300);
  h.Record(500);
  // Clamped to the observed range, so P0 and P100 are exact even with wide buckets.
  EXPECT_EQ(h.Percentile(0), 300.0);
  EXPECT_EQ(h.Percentile(100), 700.0);
  EXPECT_EQ(h.Min(), 300);
  EXPECT_EQ(h.Max(), 700);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 1500);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.0);
}

TEST(HistogramPercentile, InterpolatesWithinBucketError) {
  // 1000 uniform values 1..1000: every percentile estimate must be within one sub-bucket
  // (6.25%) of the true order statistic.
  LatencyHistogram h;
  for (int64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double expected = p * 10.0;  // True p-th percentile of 1..1000.
    EXPECT_NEAR(h.Percentile(p), expected, expected / LatencyHistogram::kSubBuckets + 1.0)
        << "p=" << p;
  }
  // Monotone in p.
  double prev = 0;
  for (double p = 0; p <= 100; p += 2.5) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramPercentile, SinglePointMassIsExactEverywhere) {
  LatencyHistogram h;
  for (int i = 0; i < 50; ++i) {
    h.Record(8504081);
  }
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(h.Percentile(p), 8504081.0);
  }
}

TEST(HistogramMerge, MatchesRecordingIntoOne) {
  common::Rng rng(3);
  LatencyHistogram parts[4];
  LatencyHistogram whole;
  for (int i = 0; i < 4000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.Below(1u << 24));
    parts[i % 4].Record(v);
    whole.Record(v);
  }
  LatencyHistogram merged;
  for (const LatencyHistogram& part : parts) {
    merged.Merge(part);
  }
  EXPECT_EQ(merged.Count(), whole.Count());
  EXPECT_EQ(merged.Sum(), whole.Sum());
  EXPECT_EQ(merged.Min(), whole.Min());
  EXPECT_EQ(merged.Max(), whole.Max());
  EXPECT_EQ(merged.buckets(), whole.buckets());
  for (const double p : {50.0, 90.0, 99.0}) {
    EXPECT_EQ(merged.Percentile(p), whole.Percentile(p));
  }
}

TEST(HistogramMerge, Associative) {
  // (a + b) + c == a + (b + c): bucket-wise addition is exact, so the merge order of per-shard
  // histograms cannot change any reported statistic.
  common::Rng rng(5);
  LatencyHistogram a, b, c;
  for (int i = 0; i < 300; ++i) {
    a.Record(static_cast<int64_t>(rng.Below(1u << 16)));
    b.Record(static_cast<int64_t>(rng.Below(1u << 20)));
    c.Record(static_cast<int64_t>(rng.Below(1u << 28)));
  }
  LatencyHistogram left = a;   // (a+b)+c
  left.Merge(b);
  left.Merge(c);
  LatencyHistogram bc = b;     // a+(b+c)
  bc.Merge(c);
  LatencyHistogram right = a;
  right.Merge(bc);
  EXPECT_EQ(left.buckets(), right.buckets());
  EXPECT_EQ(left.Count(), right.Count());
  EXPECT_EQ(left.Sum(), right.Sum());
  EXPECT_EQ(left.Min(), right.Min());
  EXPECT_EQ(left.Max(), right.Max());
  EXPECT_EQ(left.Percentile(99), right.Percentile(99));
}

TEST(HistogramMerge, ArrayScaleMemberMergeMatchesConcatenation) {
  // The array-reporting contract: an N-member array keeps one per-member latency histogram and
  // merges them for the array-wide view. Simulate 8 members with realistic ms-scale request
  // latencies (each member skewed differently, the way a mirrored read balance or an uneven
  // stripe would skew them); the merged histogram must be bucket-for-bucket the histogram of
  // the concatenated samples, and its percentiles must stay clamped to the true observed
  // extremes across every member.
  constexpr uint32_t kMembers = 8;
  common::Rng rng(13);
  std::vector<LatencyHistogram> member(kMembers);
  LatencyHistogram whole;
  int64_t true_min = std::numeric_limits<int64_t>::max();
  int64_t true_max = 0;
  for (uint32_t m = 0; m < kMembers; ++m) {
    // Member m centers around (m+1) * ~2 ms with a long tail, in nanoseconds.
    for (int i = 0; i < 4000; ++i) {
      int64_t v = static_cast<int64_t>((m + 1) * 2'000'000 + rng.Below(1'500'000));
      if (rng.Below(100) < 2) {
        v += static_cast<int64_t>(rng.Below(50'000'000));  // p99-ish tail.
      }
      member[m].Record(v);
      whole.Record(v);
      true_min = std::min(true_min, v);
      true_max = std::max(true_max, v);
    }
  }
  LatencyHistogram merged;
  for (uint32_t m = 0; m < kMembers; ++m) {
    merged.Merge(member[m]);
  }
  EXPECT_EQ(merged.buckets(), whole.buckets());
  EXPECT_EQ(merged.Count(), whole.Count());
  EXPECT_EQ(merged.Sum(), whole.Sum());
  EXPECT_EQ(merged.Min(), true_min);
  EXPECT_EQ(merged.Max(), true_max);
  for (const double p : {0.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(merged.Percentile(p), whole.Percentile(p)) << p;
  }
  // Percentile clamping survives the merge: the extremes are exact, not bucket bounds.
  EXPECT_EQ(merged.Percentile(0), static_cast<double>(true_min));
  EXPECT_EQ(merged.Percentile(100), static_cast<double>(true_max));
}

TEST(HistogramBuckets, BitScanMatchesLoopReferenceAcrossFullValueRange) {
  // BucketIndex computes the octave with a single countl_zero. This pins it against the
  // obvious shift-loop reference over the full int64 range: exhaustively through the first
  // octaves, every power-of-two boundary (2^k - 1, 2^k, 2^k + 1) up to and including the
  // octave that covers INT64_MAX, and a random sweep across all magnitudes.
  const auto reference = [](int64_t value) -> uint32_t {
    if (value < 0) {
      value = 0;
    }
    const uint64_t v = static_cast<uint64_t>(value);
    if (v < LatencyHistogram::kSubBuckets) {
      return static_cast<uint32_t>(v);
    }
    uint32_t octave = 0;
    while (octave < 63 && (uint64_t{1} << (octave + 1)) <= v) {
      ++octave;
    }
    const uint32_t sub = static_cast<uint32_t>(
        (v - (uint64_t{1} << octave)) >> (octave - LatencyHistogram::kFirstOctave));
    return LatencyHistogram::kSubBuckets +
           (octave - LatencyHistogram::kFirstOctave) * LatencyHistogram::kSubBuckets + sub;
  };

  for (int64_t v = -3; v < (1 << 18); ++v) {
    ASSERT_EQ(LatencyHistogram::BucketIndex(v), reference(v)) << v;
  }
  for (uint32_t k = LatencyHistogram::kFirstOctave; k <= LatencyHistogram::kMaxOctave; ++k) {
    for (const int64_t v : {(int64_t{1} << k) - 1, int64_t{1} << k, (int64_t{1} << k) + 1,
                            (int64_t{1} << k) + (int64_t{1} << (k - 1))}) {
      if (v < 0) {
        continue;  // 2^62 + 2^61 overflows nothing here, but keep the guard explicit.
      }
      ASSERT_EQ(LatencyHistogram::BucketIndex(v), reference(v)) << v;
    }
  }
  ASSERT_EQ(LatencyHistogram::BucketIndex(std::numeric_limits<int64_t>::max()),
            reference(std::numeric_limits<int64_t>::max()));
  common::Rng rng(23);
  for (int i = 0; i < 200000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.Below(1ull << (4 + rng.Below(59))));
    ASSERT_EQ(LatencyHistogram::BucketIndex(v), reference(v)) << v;
  }
}

TEST(HistogramRecord, NegativeClampsToZero) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Sum(), 0);
}

}  // namespace
}  // namespace vlog::obs
